"""HAU runtime: the SPE loop hosting one HAU's operator chain on a node.

This is where the paper's execution semantics live:

* **Per-edge FIFO intake with backpressure.** Each inbound edge has its
  own reliable channel; a receiver process moves deliveries into a
  bounded inbox.  When the HAU stalls (e.g. a synchronous checkpoint),
  the inbox fills, channel buffers fill, and upstream sends block — the
  cascading disruption the paper measures in Fig. 15.
* **Token alignment.** When the main loop dequeues a token for edge *e*,
  edge *e* is blocked: subsequent tuples from *e* are held back, while
  other edges keep flowing ("HAU 5 then stops processing tuples from
  HAU 3 ... can still process tuples from HAU 4", §III-A).  The hosted
  checkpoint scheme decides what happens when tokens have arrived on all
  edges.
* **Stream-boundary snapshots.** ``pre_token_backlog`` captures, per
  edge, the tuples that *precede* the token but are not yet processed —
  part of the individual checkpoint, so that on recovery no pre-token
  tuple is lost (the upstream will not regenerate them).

Scheme integration is through :class:`SchemeHooks`; the runtime itself is
scheme-agnostic.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Any

from repro.cluster.channel import Channel, ChannelClosedError
from repro.cluster.node import Node
from repro.dsps.graph import EdgeSpec, HAUSpec
from repro.dsps.operator import Emit, Operator, OperatorContext, SourceOperator
from repro.dsps.tuples import BatchEnvelope, DataTuple, Token, is_token
from repro.simulation.core import Environment, Interrupt
from repro.simulation.resources import Gate, Store

DEFAULT_INBOX_CAPACITY = 128


def stable_route_hash(key: Any) -> int:
    """PYTHONHASHSEED-independent routing hash.

    ``hash(str)`` is salted per process, so using it to pick an out-edge
    would route the same key differently between runs and break the
    same-seed digest contract.  Numeric hashes are unsalted in CPython,
    so ints/floats (and tuples of them — CPython's tuple hash combines
    the already-stable element hashes, and numeric hashes are fixpoints
    of re-hashing) keep their historical routing and the pinned digests
    are unchanged; salted types reroute through crc32 of a stable
    encoding.
    """
    if isinstance(key, (int, float)):
        # unsalted and process-stable for numerics
        return hash(key)  # repro-lint: disable=DET004,PUR001
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        # element hashes stabilised first, then CPython's tuple combiner
        return hash(tuple(stable_route_hash(e) for e in key))  # repro-lint: disable=DET004,PUR001
    return zlib.crc32(repr(key).encode("utf-8"))



IDLE_SOURCE_POLL = 0.05  # safe-point poll for sources with no pending data
SOURCE_DELAY_CHUNK = 0.25  # max wait between source safe-points


class _Nudge:
    """Sentinel inbox item that wakes an idle main loop so it passes a
    scheme safe-point (see :meth:`HAURuntime.request_safepoint`)."""

    __slots__ = ()


_NUDGE = _Nudge()


class SchemeHooks:
    """Hook surface a checkpoint scheme implements (all optional).

    Generator-valued hooks are driven with ``yield from`` inside the HAU
    process, so they can spend simulated time (preservation writes).
    """

    def on_hau_started(self, hau: "HAURuntime") -> None:
        """HAU process came up (fresh start or post-recovery restart)."""

    def on_source_emit(self, hau: "HAURuntime", tup: DataTuple):
        """Before a source sends ``tup`` (source preservation). Generator."""
        return
        yield  # pragma: no cover

    def on_emit(self, hau: "HAURuntime", edge: EdgeSpec, tup: DataTuple):
        """After ``tup`` is queued on ``edge`` (input preservation). Generator."""
        return
        yield  # pragma: no cover

    def on_token_arrival(self, hau: "HAURuntime", edge_idx: int, token: Token) -> None:
        """Receiver-level notification: a token landed in the inbox."""

    def handle_token(self, hau: "HAURuntime", edge_idx: int, token: Token):
        """Main-loop token processing. Generator."""
        return
        yield  # pragma: no cover

    def processing_overhead(self, hau: "HAURuntime") -> float:
        """Multiplicative CPU tax (e.g. copy-on-write during async ckpt)."""
        return 0.0

    def maybe_checkpoint(self, hau: "HAURuntime"):
        """Safe-point hook, called at every tuple boundary of the main and
        source loops.  Schemes take snapshots here so that no tuple is ever
        half-processed (state mutated, emissions unsent) inside a
        checkpoint. Generator."""
        return
        yield  # pragma: no cover

    def on_channel_broken(self, hau: "HAURuntime", edge_idx: int) -> None:
        """An inbound channel broke (upstream neighbour failure signal)."""

    def on_control(self, hau: "HAURuntime", message: Any):
        """A control-plane message arrived from the controller. Generator."""
        return
        yield  # pragma: no cover


class HAURuntime:
    """One HAU running on one node."""

    def __init__(
        self,
        env: Environment,
        spec: HAUSpec,
        node: Node,
        in_edges: list[EdgeSpec],
        out_edges: list[EdgeSpec],
        scheme: SchemeHooks,
        rng,
        metrics=None,
        inbox_capacity: int = DEFAULT_INBOX_CAPACITY,
        restored: dict | None = None,
        batched: bool = False,
    ):
        self.env = env
        # True when this runtime's data channels coalesce tuples
        # (batch_quantum > 0).  The batched path is not digest-pinned, so
        # the hot loops may shed waits on an already-open intake gate —
        # semantically a pass-through either way; only the kernel event
        # is saved.  The unbatched path keeps every wait: its exact event
        # sequence is what the committed digests fingerprint.
        self.batched = batched
        self.spec = spec
        self.hau_id = spec.hau_id
        self.node = node
        self.scheme = scheme
        self.metrics = metrics
        self.rng = rng
        self._trace = env.trace  # cached: one attribute check per emission site
        # Telemetry handles are resolved once here (the registry is
        # get-or-create, so caching is purely a hot-loop optimisation);
        # with telemetry off these are the shared no-op metric.
        self._telem = env.telemetry
        self._m_tuples = self._telem.counter("ms_hau_tuples_total", hau=spec.hau_id)
        self._m_busy = self._telem.counter("ms_hau_busy_seconds_total", hau=spec.hau_id)
        self._m_latency = self._telem.histogram(
            "ms_hau_tuple_latency_seconds", hau=spec.hau_id
        )
        self._m_tokens_sent = self._telem.counter(
            "ms_hau_tokens_sent_total", hau=spec.hau_id
        )
        self._m_tokens_recv = self._telem.counter(
            "ms_hau_tokens_received_total", hau=spec.hau_id
        )

        self.operators: list[Operator] = spec.make_operators()
        if not self.operators:
            raise ValueError(f"HAU {self.hau_id} has no operators")
        ctx = OperatorContext(hau_id=self.hau_id, now=lambda: env.now, rng=rng)
        for op in self.operators:
            op.setup(ctx)

        self.in_edges = list(in_edges)
        self.out_edges = list(out_edges)
        self.in_channels: list[Channel | None] = [None] * len(self.in_edges)
        self.out_channels: dict[str, Channel] = {}  # edge_id -> channel
        self._out_seq: dict[str, int] = {e.edge_id: 0 for e in self.out_edges}
        # Hot-path caches.  Out-edges and in-edge ports are fixed for the
        # runtime's lifetime (rewires swap channels, not edges), so the
        # per-port routing groups and per-edge input ports are computed
        # once.  A scheme that leaves the on_emit hook at the no-op base
        # implementation skips the generator drive entirely.
        self._route_cache: dict[int, list[EdgeSpec]] = {}
        self._dst_ports: list[int] = [e.dst_port for e in self.in_edges]
        on_emit = scheme.on_emit
        self._hook_on_emit = (
            None if getattr(on_emit, "__func__", None) is SchemeHooks.on_emit else on_emit
        )

        self.inbox = Store(env, capacity=inbox_capacity)
        self.intake_gate = Gate(env, opened=True)
        self.blocked_edges: set[int] = set()
        self.holdback: dict[int, deque] = {}
        # last processed sequence per in-edge: duplicate suppression after
        # recovery (a replayed/resent tuple with seq <= this is dropped)
        self._in_seq: dict[int, int] = {i: 0 for i in range(len(self.in_edges))}
        # restart support: items to re-process / re-emit before normal work
        self._replay_backlog: list[tuple[int, DataTuple]] = []
        self._replay_out: list[tuple[str, DataTuple]] = []
        self._replay_source: list[DataTuple] = []

        self.tuples_processed = 0
        self.busy_time = 0.0
        self.control_outbox: Channel | None = None  # to controller
        self._procs = []

        if restored:
            self._apply_restore(restored)

    # -- wiring (done by DSPSRuntime) ------------------------------------------
    def attach_in_channel(self, edge_idx: int, chan: Channel) -> None:
        self.in_channels[edge_idx] = chan

    def replace_in_channel(self, edge_idx: int, chan: Channel) -> None:
        """Swap in a fresh inbound channel (downstream side of a single-HAU
        restart) and start a receiver for it — the old receiver exited when
        the old channel broke."""
        self.in_channels[edge_idx] = chan
        self._procs.append(
            self.node.spawn(self._receiver(edge_idx, chan), label=f"{self.hau_id}.rx{edge_idx}r")
        )

    def attach_out_channel(self, edge: EdgeSpec, chan: Channel) -> None:
        self.out_channels[edge.edge_id] = chan

    def start(self) -> None:
        """Spawn receiver processes and the main loop on the host node."""
        for idx, chan in enumerate(self.in_channels):
            if chan is not None:
                self._procs.append(
                    self.node.spawn(self._receiver(idx, chan), label=f"{self.hau_id}.rx{idx}")
                )
        if self.is_source:
            self._procs.append(self.node.spawn(self._source_loop(), label=f"{self.hau_id}.src"))
        else:
            self._procs.append(self.node.spawn(self._main_loop(), label=f"{self.hau_id}.main"))
        if self._trace.enabled:
            self._trace.emit(
                "hau.start", t=self.env.now, subject=self.hau_id, node=self.node.node_id
            )
        self.scheme.on_hau_started(self)

    # -- classification -----------------------------------------------------------
    @property
    def is_source(self) -> bool:
        return self.spec.is_source

    @property
    def is_sink(self) -> bool:
        return self.spec.is_sink

    @property
    def source_operator(self) -> SourceOperator:
        op = self.operators[0]
        assert isinstance(op, SourceOperator)
        return op

    # -- state access ----------------------------------------------------------------
    def state_size(self) -> int:
        """Sum of constituent operators' states (§II-A: HAU state)."""
        return sum(op.state_size() for op in self.operators)

    def snapshot_operators(self) -> list[dict]:
        return [op.snapshot() for op in self.operators]

    def pre_token_backlog(self, round_id: int) -> list[tuple[int, DataTuple]]:
        """Unprocessed tuples that precede round ``round_id``'s tokens.

        Walks the inbox: for each edge whose token for this round is still
        queued, tuples of that edge ahead of the token are pre-token.  For
        edges already blocked (token processed), the pre-token tuples were
        all processed, so only post-token holdback exists — excluded.
        """
        backlog: list[tuple[int, DataTuple]] = []
        token_seen: set[int] = set()
        for edge_idx, item in self.inbox.peek_all():
            if is_token(item):
                if item.round_id == round_id:
                    token_seen.add(edge_idx)
                continue
            if edge_idx in token_seen or edge_idx in self.blocked_edges:
                continue
            if item.__class__ is BatchEnvelope:
                backlog.extend((edge_idx, t) for t in item.tuples)
            elif item.__class__ is DataTuple:
                backlog.append((edge_idx, item))
            # anything else (a queued _NUDGE) is not stream data
        return backlog

    # -- checkpoint/restore plumbing -----------------------------------------------------
    def build_checkpoint_payload(
        self,
        round_id: int,
        extra_out: list[tuple[str, DataTuple]] | None = None,
        include_backlog: bool = True,
    ) -> dict:
        """The individual checkpoint: operator snapshots + saved tuples.

        ``include_backlog=False`` is for schemes without stream-boundary
        tokens (the baseline), where unprocessed input is covered by
        upstream input preservation instead of the checkpoint.
        """
        backlog = self.pre_token_backlog(round_id) if include_backlog else []
        return {
            "hau_id": self.hau_id,
            "round_id": round_id,
            "operators": self.snapshot_operators(),
            "backlog": list(backlog),
            "out_tuples": list(extra_out or []),
            "out_seq": dict(self._out_seq),
            "in_seq": dict(self._in_seq),
            "state_size": self.state_size()
            + sum(t.size for (_e, t) in backlog)
            + sum(t.size for (_eid, t) in (extra_out or [])),
        }

    def _apply_restore(self, payload: dict) -> None:
        snaps = payload.get("operators", [])
        for op, snap in zip(self.operators, snaps):
            op.restore(snap)
        self._replay_backlog = list(payload.get("backlog", []))
        self._replay_out = list(payload.get("out_tuples", []))
        self._out_seq.update(payload.get("out_seq", {}))
        self._in_seq.update(payload.get("in_seq", {}))

    # -- intake control (used by schemes) ---------------------------------------------
    def pause_intake(self) -> None:
        self.intake_gate.close()

    def resume_intake(self) -> None:
        self.intake_gate.open()

    def block_edge(self, edge_idx: int) -> None:
        self.blocked_edges.add(edge_idx)
        self.holdback.setdefault(edge_idx, deque())

    def unblock_all_edges(self) -> list[tuple[int, DataTuple]]:
        """Clear blocks; returns held-back items in arrival order per edge."""
        drained: list[tuple[int, DataTuple]] = []
        for edge_idx in sorted(self.holdback):
            q = self.holdback[edge_idx]
            while q:
                drained.append((edge_idx, q.popleft()))
        self.blocked_edges.clear()
        self.holdback.clear()
        return drained

    # -- emission -------------------------------------------------------------------------
    def route_edges(self, emit: Emit) -> list[EdgeSpec]:
        """Which out-edges receive this emission (port match + routing)."""
        port = emit.port
        group = self._route_cache.get(port)
        if group is None:
            group = [e for e in self.out_edges if e.src_port == port]
            self._route_cache[port] = group
        if len(group) <= 1 or group[0].routing != "hash":
            return group  # broadcast (or empty / single edge)
        idx = stable_route_hash(emit.key) % len(group) if emit.key is not None else 0
        return [group[idx]]

    def emit(self, emit_spec: Emit, created_at: float, source: str):
        """Process generator: route, hook, and send one emission.

        The scheme hook (preservation) runs before the send and even when
        the channel is currently broken: a tuple emitted while the
        downstream neighbour is dead must still be retained so it can be
        replayed once the neighbour is restarted.
        """
        out_seq = self._out_seq
        out_channels = self.out_channels
        hook = self._hook_on_emit
        for edge in self.route_edges(emit_spec):
            eid = edge.edge_id
            out_seq[eid] = seq = out_seq[eid] + 1
            tup = DataTuple(
                payload=emit_spec.payload,
                size=emit_spec.size,
                key=emit_spec.key,
                created_at=created_at,
                seq=seq,
                source=source,
            )
            if hook is not None:
                yield from hook(self, edge, tup)
            chan = out_channels.get(eid)
            if chan is None or chan.closed:
                continue
            if chan.batch_quantum > 0.0:
                # Batched: hand the tuple to the channel's coalescing
                # buffer synchronously; the flush timer sends one
                # envelope per quantum.
                chan.offer(tup, size=tup.size)
            else:
                yield chan.send(tup, size=tup.size)

    def emit_token(self, token: Token):
        """Process generator: send ``token`` down every out-edge, in order."""
        for edge in self.out_edges:
            chan = self.out_channels.get(edge.edge_id)
            if chan is None or chan.closed:
                continue
            if self._trace.enabled:
                self._trace.emit(
                    "token.send",
                    t=self.env.now,
                    subject=self.hau_id,
                    round=token.round_id,
                    edge=edge.edge_id,
                    token_kind=token.kind,
                    front=False,
                )
            if self._telem.enabled:
                self._m_tokens_sent.inc()
            yield chan.send(token, size=token.size)

    def emit_token_front(self, token: Token) -> None:
        """Send ``token`` at the *head* of every output queue (1-hop tokens,
        §III-B: "immediately inserted to the output buffers and placed at
        the head of the queue").  Synchronous — never blocks."""
        for edge in self.out_edges:
            chan = self.out_channels.get(edge.edge_id)
            if chan is None or chan.closed:
                continue
            if self._trace.enabled:
                self._trace.emit(
                    "token.send",
                    t=self.env.now,
                    subject=self.hau_id,
                    round=token.round_id,
                    edge=edge.edge_id,
                    token_kind=token.kind,
                    front=True,
                )
            if self._telem.enabled:
                self._m_tokens_sent.inc()
            chan.send_front(token, size=token.size)

    def outbox_tuples(self) -> list[tuple[str, DataTuple]]:
        """Data tuples currently queued (unsent) in the output buffers.

        When a 1-hop token is inserted at the head of a queue, anything
        already queued becomes post-token on the wire and must be saved
        with the checkpoint (the paper's tuples 1, 2 in Fig. 8)."""
        out: list[tuple[str, DataTuple]] = []
        for edge in self.out_edges:
            chan = self.out_channels.get(edge.edge_id)
            if chan is None:
                continue
            for msg in chan._outbox.peek_all():
                payload = msg.payload
                if payload.__class__ is BatchEnvelope:
                    out.extend((edge.edge_id, t) for t in payload.tuples)
                elif isinstance(payload, DataTuple):
                    out.append((edge.edge_id, payload))
            # tuples offered within the current quantum but not yet
            # flushed are queued-unsent too
            for tup in chan.pending_batch_tuples():
                out.append((edge.edge_id, tup))
        return out

    def set_replay_source(self, tuples: list[DataTuple]) -> None:
        """Queue preserved tuples for full-speed replay after recovery."""
        self._replay_source = list(tuples)

    def request_safepoint(self) -> None:
        """Wake the main loop if it is idle so the scheme's safe-point hook
        runs promptly (periodic baseline checkpoints, queued replays).
        Sources poll their own safe-points; no nudge needed."""
        if not self.is_source:
            self.inbox.put((-1, _NUDGE))

    def resend(self, edge_id: str, tup: DataTuple):
        """Re-emit a saved in-flight tuple after recovery (same seq)."""
        chan = self.out_channels.get(edge_id)
        if chan is None or chan.closed:
            return
        yield chan.send(tup, size=tup.size)

    # -- processes -------------------------------------------------------------------------
    def _receiver(self, edge_idx: int, chan: Channel):
        recv = chan.recv
        inbox_put = self.inbox.put
        try:
            while True:
                try:
                    msg = yield recv()
                except ChannelClosedError:
                    self.scheme.on_channel_broken(self, edge_idx)
                    return
                item = msg.payload
                if item.__class__ is Token:
                    if self._trace.enabled:
                        self._trace.emit(
                            "token.recv",
                            t=self.env.now,
                            subject=self.hau_id,
                            round=item.round_id,
                            edge_idx=edge_idx,
                            origin=item.origin,
                            token_kind=item.kind,
                        )
                    if self._telem.enabled:
                        self._m_tokens_recv.inc()
                    self.scheme.on_token_arrival(self, edge_idx, item)
                yield inbox_put((edge_idx, item))
        except Interrupt:
            return

    def _process_tuple(self, edge_idx: int, tup: DataTuple, charge: bool = True):
        """Run the operator chain over one tuple; emit the results.

        With ``charge=False`` the processing-cost wait is skipped and the
        cost is returned instead: the envelope unpack loop charges one
        summed wait per envelope (batch execution) rather than one kernel
        event per constituent.  Accounting (busy time, metrics) is
        identical either way; only when the simulated wait is paid moves.
        """
        if tup.seq:
            in_seq = self._in_seq
            if tup.seq <= in_seq.get(edge_idx, 0):
                return 0.0  # duplicate after recovery: already in restored state
            in_seq[edge_idx] = tup.seq
        dst_ports = self._dst_ports
        port = dst_ports[edge_idx] if edge_idx < len(dst_ports) else 0
        ops = self.operators
        if len(ops) == 1:
            # Single-operator chain (the paper's evaluation shape): no
            # intermediate fan-out lists to build.  Float arithmetic is
            # identical to the generic loop (0.0 + x == x for costs >= 0).
            op = ops[0]
            cost = op.processing_cost(tup)
            emissions = op.on_tuple(port, tup)
        else:
            cost = 0.0
            emissions = []
            current: list[tuple[int, DataTuple]] = [(port, tup)]
            for depth, op in enumerate(ops):
                nxt: list[tuple[int, DataTuple]] = []
                for p, t in current:
                    cost += op.processing_cost(t)
                    outs = op.on_tuple(p, t)
                    if depth == len(ops) - 1:
                        emissions.extend(outs)
                    else:
                        nxt.extend(
                            (o.port, DataTuple(o.payload, o.size, o.key, t.created_at, 0, t.source))
                            for o in outs
                        )
                current = nxt
                if depth == len(ops) - 1:
                    break
        cost *= 1.0 + self.scheme.processing_overhead(self)
        if charge and cost > 0:
            yield self.env.timeout(cost)
        self.busy_time += cost
        self.tuples_processed += 1
        if self._telem.enabled:
            self._m_tuples.inc()
            self._m_busy.inc(cost)
            self._m_latency.observe(self.env.now - tup.created_at)
        if self.metrics is not None:
            self.metrics.record_stage(self.hau_id, tup.created_at, self.env.now)
            if self.is_sink:
                self.metrics.record_sink(self.hau_id, tup.created_at, self.env.now)
        for emit_spec in emissions:
            yield from self.emit(emit_spec, created_at=tup.created_at, source=tup.source)
        return cost

    def _main_loop(self):
        try:
            # Post-recovery: first re-send saved in-flight outputs, then
            # re-process the saved pre-token backlog.
            if self._replay_out and self._trace.enabled:
                self._trace.emit(
                    "replay.out",
                    t=self.env.now,
                    subject=self.hau_id,
                    count=len(self._replay_out),
                )
            for edge_id, tup in self._replay_out:
                yield from self.resend(edge_id, tup)
            self._replay_out = []
            backlog, self._replay_backlog = self._replay_backlog, []
            if backlog and self._trace.enabled:
                self._trace.emit(
                    "replay.backlog",
                    t=self.env.now,
                    subject=self.hau_id,
                    count=len(backlog),
                )
            for edge_idx, tup in backlog:
                yield from self._process_tuple(edge_idx, tup)
            # Steady-state loop: bound methods and collections are hoisted,
            # and the overwhelmingly-common case (a data tuple on an
            # unblocked edge) is dispatched first.  DataTuple, Token and
            # _Nudge have no subclasses, so exact-class checks are
            # equivalent to the original isinstance/identity dispatch.
            maybe_checkpoint = self.scheme.maybe_checkpoint
            handle_token = self.scheme.handle_token
            gate = self.intake_gate
            gate_wait = gate.wait
            inbox_get = self.inbox.get
            blocked = self.blocked_edges
            holdback = self.holdback
            process_tuple = self._process_tuple
            batched = self.batched
            while True:
                yield from maybe_checkpoint(self)
                if not batched or not gate._opened:
                    yield gate_wait()
                edge_idx, item = yield inbox_get()
                if item.__class__ is DataTuple:
                    if edge_idx in blocked:
                        holdback[edge_idx].append(item)
                    else:
                        yield from process_tuple(edge_idx, item)
                elif item.__class__ is BatchEnvelope:
                    # Unpack in emission order, re-running the per-tuple
                    # boundary protocol (safe-point, intake gate, edge
                    # block) between constituents so schemes observe the
                    # exact tuple sequence of the unbatched path.  Two
                    # per-constituent kernel events are shed — waits on an
                    # already-open gate (a pass-through either way) and
                    # individual processing-cost timeouts, charged instead
                    # as one summed wait after the envelope (batch
                    # execution).  Both sheds live only under
                    # batch_quantum > 0, which is not digest-pinned.
                    first = True
                    deferred = 0.0
                    for tup in item.tuples:
                        if first:
                            first = False
                        else:
                            yield from maybe_checkpoint(self)
                            if not gate._opened:
                                yield gate_wait()
                        if edge_idx in blocked:
                            holdback[edge_idx].append(tup)
                        else:
                            deferred += yield from process_tuple(
                                edge_idx, tup, False
                            )
                    if deferred > 0:
                        yield self.env.timeout(deferred)
                elif item is _NUDGE:
                    continue  # safe-point wake-up: hook runs at loop top
                else:
                    yield from handle_token(self, edge_idx, item)
        except Interrupt:
            return

    def _source_loop(self):
        op = self.source_operator
        try:
            # Post-recovery: first re-send the saved in-flight outputs (the
            # tuples "between the incoming tokens and the output tokens"
            # that the checkpoint carried), then replay preserved tuples.
            if self._replay_out and self._trace.enabled:
                self._trace.emit(
                    "replay.out",
                    t=self.env.now,
                    subject=self.hau_id,
                    count=len(self._replay_out),
                )
            for edge_id, tup in self._replay_out:
                yield from self.resend(edge_id, tup)
            self._replay_out = []
            # Post-recovery: replay preserved tuples at full speed ("it can
            # process the replayed tuples faster than usual to catch up",
            # §III).  Replayed tuples keep their original creation time and
            # are already preserved, so the preservation hook is skipped.
            replay, self._replay_source = self._replay_source, []
            if replay and self._trace.enabled:
                self._trace.emit(
                    "replay.source",
                    t=self.env.now,
                    subject=self.hau_id,
                    count=len(replay),
                )
            for tup in replay:
                yield self.intake_gate.wait()
                op.emitted_count += 1
                yield from self.emit(
                    Emit(payload=tup.payload, size=tup.size, port=0, key=tup.key),
                    created_at=tup.created_at,
                    source=self.hau_id,
                )
            # Normal generation, resuming past the already-emitted prefix
            # (the generator is deterministic; see Operator docstring).
            # ``sched`` is the nominal sensor-capture instant: tuples are
            # stamped with it (not the emission instant), so time spent
            # blocked behind backpressure counts into end-to-end latency —
            # the real sensor kept capturing while the pipeline stalled.
            gen = op.generate()
            skip = op.emitted_count
            produced = 0
            sched = 0.0
            env = self.env
            timeout = env.timeout
            maybe_checkpoint = self.scheme.maybe_checkpoint
            on_source_emit = self.scheme.on_source_emit
            gate = self.intake_gate
            gate_wait = gate.wait
            batched = self.batched
            hau_id = self.hau_id
            do_emit = self.emit
            for delay, emit_spec in gen:
                sched += delay
                if produced < skip:
                    produced += 1
                    continue
                # Chunked inter-arrival wait so a slow source still reaches
                # checkpoint safe-points promptly.
                remaining = delay
                while remaining > 0:
                    chunk = min(remaining, SOURCE_DELAY_CHUNK)
                    yield timeout(chunk)
                    remaining -= chunk
                    if remaining > 0:
                        yield from maybe_checkpoint(self)
                yield from maybe_checkpoint(self)
                now = env.now
                tup = DataTuple(
                    payload=emit_spec.payload,
                    size=emit_spec.size,
                    key=emit_spec.key,
                    created_at=sched if sched < now else now,
                    seq=op.emitted_count + 1,
                    source=hau_id,
                )
                # Same open-gate shed as the main loop: batched mode only.
                if not batched or not gate._opened:
                    yield gate_wait()
                yield from on_source_emit(self, tup)
                op.emitted_count += 1
                produced += 1
                yield from do_emit(
                    Emit(payload=tup.payload, size=tup.size, port=0, key=tup.key),
                    created_at=tup.created_at,
                    source=hau_id,
                )
            # Generator exhausted (finite workload): stay alive at safe
            # points so checkpoint rounds can still complete.
            while True:
                yield from maybe_checkpoint(self)
                yield timeout(IDLE_SOURCE_POLL)
        except Interrupt:
            return

    def kill_local_processes(self) -> None:
        """Stop this HAU's processes without failing the node (rollback)."""
        procs, self._procs = self._procs, []
        for p in procs:
            p.interrupt("rollback")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HAURuntime {self.hau_id} on {self.node.node_id}>"
