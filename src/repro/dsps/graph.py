"""Query network: the DAG of HAUs and typed edges between them.

§II-A: "A directed acyclic graph, termed query network, specifies the
producer-consumer relations between operators."  Each HAU here hosts a
chain of one or more operators (the paper's evaluation uses one operator
per HAU); edges carry an output-port and input-port index plus an
optional routing mode for fan-out groups (broadcast vs key-hash, e.g.
"each GoogleMap operator connects to all Group operators").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import networkx as nx

from repro.dsps.operator import Operator


class GraphError(Exception):
    """Malformed query network."""


@dataclass
class HAUSpec:
    """Blueprint for one High Availability Unit.

    ``make_operators`` is a factory (re-invoked when the HAU is restarted
    on a spare node after a failure) returning the operator chain.
    """

    hau_id: str
    make_operators: Callable[[], list[Operator]]
    is_source: bool = False
    is_sink: bool = False


@dataclass
class EdgeSpec:
    """A stream between two HAUs."""

    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 0
    routing: str = "broadcast"  # "broadcast" | "hash" — for fan-out groups

    def __post_init__(self) -> None:
        # Precomputed: edge_id is read on every emission (per-edge output
        # sequence numbers, channel lookup), so a property that rebuilds
        # the string each time shows up in kernel profiles.
        self.edge_id = f"{self.src}[{self.src_port}]->{self.dst}[{self.dst_port}]"


class QueryGraph:
    """Builder + validator for a stream application's query network."""

    def __init__(self):
        self.haus: dict[str, HAUSpec] = {}
        self.edges: list[EdgeSpec] = []

    # -- construction ------------------------------------------------------------
    def add_hau(
        self,
        hau_id: str,
        make_operators: Callable[[], list[Operator]],
        is_source: bool = False,
        is_sink: bool = False,
    ) -> HAUSpec:
        if hau_id in self.haus:
            raise GraphError(f"duplicate HAU id {hau_id!r}")
        spec = HAUSpec(hau_id, make_operators, is_source=is_source, is_sink=is_sink)
        self.haus[hau_id] = spec
        return spec

    def connect(
        self,
        src: str,
        dst: str,
        src_port: int = 0,
        dst_port: int = 0,
        routing: str = "broadcast",
    ) -> EdgeSpec:
        for end in (src, dst):
            if end not in self.haus:
                raise GraphError(f"unknown HAU {end!r}")
        if routing not in ("broadcast", "hash"):
            raise GraphError(f"unknown routing mode {routing!r}")
        edge = EdgeSpec(src, dst, src_port, dst_port, routing)
        if any(e.edge_id == edge.edge_id for e in self.edges):
            raise GraphError(f"duplicate edge {edge.edge_id}")
        self.edges.append(edge)
        return edge

    # -- queries -------------------------------------------------------------------
    def out_edges(self, hau_id: str) -> list[EdgeSpec]:
        return [e for e in self.edges if e.src == hau_id]

    def in_edges(self, hau_id: str) -> list[EdgeSpec]:
        return [e for e in self.edges if e.dst == hau_id]

    def upstream(self, hau_id: str) -> list[str]:
        return sorted({e.src for e in self.in_edges(hau_id)})

    def downstream(self, hau_id: str) -> list[str]:
        return sorted({e.dst for e in self.out_edges(hau_id)})

    def sources(self) -> list[str]:
        return sorted(h for h, s in self.haus.items() if s.is_source)

    def sinks(self) -> list[str]:
        return sorted(h for h, s in self.haus.items() if s.is_sink)

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.haus)
        for e in self.edges:
            g.add_edge(e.src, e.dst)
        return g

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self.to_networkx()))

    # -- validation -------------------------------------------------------------------
    def validate(self) -> None:
        """Check the network is a usable DAG.

        * acyclic (a *query network* is a DAG by definition);
        * sources have no in-edges and at least one out-edge;
        * sinks have no out-edges;
        * every non-source HAU is reachable from some source;
        * input ports of each HAU are contiguous 0..k-1.
        """
        if not self.haus:
            raise GraphError("empty graph")
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            raise GraphError("query network contains a cycle")
        srcs = self.sources()
        if not srcs:
            raise GraphError("no source HAUs")
        for hau_id, spec in self.haus.items():
            ins = self.in_edges(hau_id)
            outs = self.out_edges(hau_id)
            if spec.is_source and ins:
                raise GraphError(f"source {hau_id} has inbound edges")
            if spec.is_source and not outs:
                raise GraphError(f"source {hau_id} has no outbound edges")
            if spec.is_sink and outs:
                raise GraphError(f"sink {hau_id} has outbound edges")
            if not spec.is_source and not ins:
                raise GraphError(f"non-source {hau_id} has no inbound edges")
            ports = sorted({e.dst_port for e in ins})
            if ports and ports != list(range(len(ports))):
                raise GraphError(f"{hau_id} input ports not contiguous: {ports}")
        reachable = set(srcs)
        for s in srcs:
            reachable |= nx.descendants(g, s)
        unreachable = set(self.haus) - reachable
        if unreachable:
            raise GraphError(f"unreachable HAUs: {sorted(unreachable)}")

    def __len__(self) -> int:
        return len(self.haus)
