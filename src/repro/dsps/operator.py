"""Operator model: user processing logic hosted inside an HAU.

Mirrors the paper's C++ operator class (§III-C1, Fig. 9): developers
implement per-port processing; operator state is the instance's declared
state attributes; ``state_size()`` is derived mechanically.  Here the
"precompiler" is replaced by :mod:`repro.state` hints, and snapshots are
deep copies of the declared state attributes.

Determinism contract: given the same input tuples in the same per-port
order, an operator must produce the same outputs and state.  Meteor
Shower's recovery (global rollback + source replay) relies on this to
regenerate post-token tuples.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
import copy
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dsps.tuples import DataTuple
from repro.state.spec import StateHint, estimate_state_size


@dataclass(slots=True)
class Emit:
    """One output produced by processing a tuple."""

    payload: Any
    size: int
    port: int = 0
    key: Any | None = None


@dataclass
class OperatorContext:
    """What an operator can see of its host at setup time."""

    hau_id: str
    now: Callable[[], float]
    rng: np.random.Generator


# Default CPU cost model: a 2.3 GHz core moving/working a byte of tuple.
# ~50 MB/s of per-core tuple-processing throughput is in line with the
# paper's applications (image kernels on 1.7 GB VMs).
DEFAULT_COST_PER_BYTE = 1.0 / 50_000_000
DEFAULT_FIXED_COST = 20e-6  # per-tuple dispatch overhead


class Operator:
    """Base class for stream operators.

    Subclasses define ``state_attrs`` (names of instance attributes that
    constitute operator state) and optionally ``state_hints`` for sampled
    size estimation, then implement :meth:`on_tuple`.
    """

    #: instance attribute names that make up the operator's state
    state_attrs: tuple[str, ...] = ()
    #: declarative size hints, keyed by attribute name
    state_hints: dict[str, StateHint] = {}

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.ctx: OperatorContext | None = None

    # -- lifecycle -------------------------------------------------------------
    def setup(self, ctx: OperatorContext) -> None:
        """Called once when the hosting HAU starts (and again on restart)."""
        self.ctx = ctx

    # -- processing --------------------------------------------------------------
    def on_tuple(self, port: int, tup: DataTuple) -> list[Emit]:
        """Process one input tuple; return emissions."""
        raise NotImplementedError

    def processing_cost(self, tup: DataTuple) -> float:
        """Simulated CPU seconds to process ``tup``."""
        return DEFAULT_FIXED_COST + tup.size * DEFAULT_COST_PER_BYTE

    # -- state ---------------------------------------------------------------------
    def state_size(self) -> int:
        """Estimated state size in bytes (the paper's generated function)."""
        return estimate_state_size(self)

    def snapshot(self) -> dict[str, Any]:
        """Deep-copy the declared state attributes."""
        return {attr: copy.deepcopy(getattr(self, attr)) for attr in self.state_attrs}

    def restore(self, snap: dict[str, Any]) -> None:
        for attr, value in snap.items():
            setattr(self, attr, copy.deepcopy(value))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class SourceOperator(Operator):
    """An operator that generates the stream instead of consuming one.

    The HAU runtime drives :meth:`generate`, a Python generator yielding
    ``(inter_arrival_seconds, Emit)`` pairs.  Sources also participate in
    replay: after recovery the scheme re-injects preserved tuples, and the
    source resumes generation from where its checkpoint left off
    (``emitted_count`` is part of the source state).
    """

    state_attrs = ("emitted_count",)

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.emitted_count = 0

    def generate(self) -> Iterable[tuple[float, Emit]]:
        """Yield (delay-before-emit, emission) pairs, indefinitely."""
        raise NotImplementedError

    def on_tuple(self, port: int, tup: DataTuple) -> list[Emit]:  # pragma: no cover
        raise RuntimeError(f"source operator {self.name} received a tuple")


class SinkOperator(Operator):
    """Terminal operator: records deliveries for metrics and verification."""

    state_attrs = ("received_count",)

    def __init__(self, name: str = "", keep_payloads: bool = False):
        super().__init__(name)
        self.received_count = 0
        self.keep_payloads = keep_payloads
        self.payload_log: list[Any] = []  # verification only; not "state"

    def on_tuple(self, port: int, tup: DataTuple) -> list[Emit]:
        self.received_count += 1
        if self.keep_payloads:
            self.payload_log.append(tup.payload)
        return []

    def processing_cost(self, tup: DataTuple) -> float:
        return DEFAULT_FIXED_COST


class StatelessMapOperator(Operator):
    """Convenience: a stateless 1-in/1-out transform (used in tests)."""

    def __init__(self, fn: Callable[[Any], Any], out_size: int | None = None, name: str = ""):
        super().__init__(name)
        self.fn = fn
        self.out_size = out_size

    def on_tuple(self, port: int, tup: DataTuple) -> list[Emit]:
        return [
            Emit(
                payload=self.fn(tup.payload),
                size=self.out_size if self.out_size is not None else tup.size,
                key=tup.key,
            )
        ]
