"""Stream items: data tuples and checkpoint tokens.

A *tuple* is the unit of data between operators (§II-A).  A *token* is
"a piece of data embedded in the dataflow" (§III-A) that conveys a
checkpoint command; it travels in-band through the same channels as data
tuples, which is what gives it its stream-boundary meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

TOKEN_SIZE = 64  # bytes on the wire: "incurs very small overhead"


@dataclass
class DataTuple:
    """A unit of stream data.

    ``size`` is the nominal wire/state size in bytes (declared by the
    workload, not measured from the Python object — see DESIGN.md).
    ``created_at`` is stamped at the source and carried downstream so the
    sink can compute end-to-end latency.  ``seq`` is a per-stream sequence
    number assigned at emission, used by input preservation acks and by
    duplicate suppression during baseline recovery.
    """

    payload: Any
    size: int
    key: Any | None = None
    created_at: float = 0.0
    seq: int = 0
    source: str = ""

    def with_seq(self, seq: int) -> "DataTuple":
        return DataTuple(
            payload=self.payload,
            size=self.size,
            key=self.key,
            created_at=self.created_at,
            seq=seq,
            source=self.source,
        )


@dataclass(frozen=True)
class Token:
    """A checkpoint token.

    ``round_id`` identifies the application checkpoint this token belongs
    to.  ``kind`` distinguishes the cascading tokens of MS-src (forwarded
    downstream after each individual checkpoint) from the 1-hop tokens of
    MS-src+ap/+aa (discarded once the individual checkpoint starts).
    """

    round_id: int
    origin: str = ""
    kind: str = "cascade"  # "cascade" | "one_hop"
    size: int = field(default=TOKEN_SIZE, compare=False)


StreamItem = DataTuple | Token


def is_token(item: StreamItem) -> bool:
    return isinstance(item, Token)
