"""Stream items: data tuples and checkpoint tokens.

A *tuple* is the unit of data between operators (§II-A).  A *token* is
"a piece of data embedded in the dataflow" (§III-A) that conveys a
checkpoint command; it travels in-band through the same channels as data
tuples, which is what gives it its stream-boundary meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

TOKEN_SIZE = 64  # bytes on the wire: "incurs very small overhead"


@dataclass(slots=True)
class DataTuple:
    """A unit of stream data.

    ``size`` is the nominal wire/state size in bytes (declared by the
    workload, not measured from the Python object — see DESIGN.md).
    ``created_at`` is stamped at the source and carried downstream so the
    sink can compute end-to-end latency.  ``seq`` is a per-stream sequence
    number assigned at emission, used by input preservation acks and by
    duplicate suppression during baseline recovery.
    """

    payload: Any
    size: int
    key: Any | None = None
    created_at: float = 0.0
    seq: int = 0
    source: str = ""

    def with_seq(self, seq: int) -> "DataTuple":
        return DataTuple(
            payload=self.payload,
            size=self.size,
            key=self.key,
            created_at=self.created_at,
            seq=seq,
            source=self.source,
        )


@dataclass(frozen=True)
class Token:
    """A checkpoint token.

    ``round_id`` identifies the application checkpoint this token belongs
    to.  ``kind`` distinguishes the cascading tokens of MS-src (forwarded
    downstream after each individual checkpoint) from the 1-hop tokens of
    MS-src+ap/+aa (discarded once the individual checkpoint starts).
    """

    round_id: int
    origin: str = ""
    kind: str = "cascade"  # "cascade" | "one_hop"
    size: int = field(default=TOKEN_SIZE, compare=False)


class BatchEnvelope:
    """Several same-edge :class:`DataTuple`\\ s coalesced into one wire unit.

    With channel batching on (``batch_quantum > 0``), tuples emitted onto
    the same edge within one time quantum travel as a single envelope: the
    channel pays one ``latency`` plus the summed serialisation time
    (``Σ size / bandwidth``) instead of per-tuple overheads, and the
    kernel pays one event chain per envelope instead of per tuple.  The
    receiver unpacks it back into individual tuples in emission order, so
    operators and checkpoint schemes observe the identical per-edge tuple
    sequence as the unbatched path.
    """

    __slots__ = ("tuples", "size")

    def __init__(self, tuples: list[DataTuple], size: int | None = None):
        self.tuples = tuples
        # the channel passes the wire size it accumulated at offer() time;
        # deriving it from the tuples is the convenience-construction path
        self.size = sum(t.size for t in tuples) if size is None else size

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchEnvelope(n={len(self.tuples)}, size={self.size})"


StreamItem = DataTuple | Token


def is_token(item: StreamItem) -> bool:
    return isinstance(item, Token)
