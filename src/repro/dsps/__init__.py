"""Distributed Stream Processing System core.

Implements the paper's execution model (§II-A): operators grouped into
High Availability Units (HAUs), each managed by a Stream Process Engine
(SPE) on a node; tuples flow along a directed acyclic *query network*.

The checkpointing schemes in :mod:`repro.core` plug into
:class:`HAURuntime` through a small hook interface
(:class:`SchemeHooks`) — tokens, preservation and state snapshots are
scheme concerns; the runtime provides the mechanics (port blocking,
intake pausing, backlog snapshots, emission).
"""

from repro.dsps.tuples import DataTuple, Token, StreamItem, TOKEN_SIZE
from repro.dsps.operator import (
    Operator,
    SourceOperator,
    SinkOperator,
    Emit,
    OperatorContext,
)
from repro.dsps.graph import QueryGraph, HAUSpec, EdgeSpec, GraphError
from repro.dsps.hau import HAURuntime, SchemeHooks
from repro.dsps.application import StreamApplication
from repro.dsps.runtime import CheckpointScheme, DSPSRuntime, RuntimeConfig

# Opt-in cross-HAU state-isolation guard (REPRO_SAN=1); installed here —
# after repro.dsps.hau / repro.dsps.operator are fully initialised — to
# keep the sanitizer import acyclic.
from repro.sanitize import maybe_install_state_guard as _maybe_install_state_guard

_maybe_install_state_guard()

__all__ = [
    "DataTuple",
    "Token",
    "StreamItem",
    "TOKEN_SIZE",
    "Operator",
    "SourceOperator",
    "SinkOperator",
    "Emit",
    "OperatorContext",
    "QueryGraph",
    "HAUSpec",
    "EdgeSpec",
    "GraphError",
    "HAURuntime",
    "SchemeHooks",
    "CheckpointScheme",
    "StreamApplication",
    "DSPSRuntime",
    "RuntimeConfig",
]
