"""Stream application: a validated query network plus identity.

Thin value object binding a :class:`QueryGraph` to a name; the
application factories in :mod:`repro.apps` return these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dsps.graph import QueryGraph


@dataclass
class StreamApplication:
    """A named, validated stream application."""

    name: str
    graph: QueryGraph
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.graph.validate()

    @property
    def hau_count(self) -> int:
        return len(self.graph)

    def describe(self) -> str:
        srcs = len(self.graph.sources())
        sinks = len(self.graph.sinks())
        return (
            f"{self.name}: {self.hau_count} HAUs "
            f"({srcs} sources, {sinks} sinks, {len(self.graph.edges)} edges)"
        )
