"""DSPS runtime: placement, wiring and lifecycle of a stream application.

Builds the simulated deployment the paper evaluates: one HAU per worker
node (more HAUs per node if the cluster is smaller than the graph), data
channels along every query-network edge, a control-plane star between
the controller (on the storage node) and every HAU, and the shared
storage service.  Also provides the re-wiring primitive the recovery
manager uses to restart HAUs on spare nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.channel import Channel
from repro.cluster.node import Node
from repro.cluster.topology import ClusterSpec, DataCenter
from repro.dsps.application import StreamApplication
from repro.dsps.graph import EdgeSpec
from repro.dsps.hau import DEFAULT_INBOX_CAPACITY, HAURuntime, SchemeHooks
from repro.metrics.collectors import MetricsHub
from repro.simulation.core import Environment, Interrupt
from repro.simulation.rng import RngRegistry
from repro.storage.shared import SharedStorage, StorageClient

CONTROL_MSG_SIZE = 512
DEFAULT_CHANNEL_CAPACITY = 64


@dataclass
class RuntimeConfig:
    """Knobs of a simulated deployment."""

    seed: int = 0
    cluster: ClusterSpec | None = None
    channel_capacity: int = DEFAULT_CHANNEL_CAPACITY
    inbox_capacity: int = DEFAULT_INBOX_CAPACITY
    # Coalesce same-edge tuples for this many simulated seconds into one
    # BatchEnvelope per data channel (0.0 = per-tuple sends, the
    # digest-pinned default).  Control channels never batch.
    batch_quantum: float = 0.0


class CheckpointScheme(SchemeHooks):
    """Application-level scheme base: HAU hooks + lifecycle."""

    name = "none"

    def __init__(self):
        self.runtime: "DSPSRuntime" | None = None

    def attach(self, runtime: "DSPSRuntime") -> None:
        self.runtime = runtime

    def start(self) -> None:
        """Spawn controller-side processes; called after HAUs start."""

    def control_reply(self, hau: HAURuntime, message: Any) -> None:
        """HAU -> controller message (fire and forget)."""
        chan = self.runtime.control_up.get(hau.hau_id) if self.runtime else None
        if chan is not None and not chan.closed:
            if hau.env.telemetry.enabled:
                hau.env.telemetry.counter(
                    "ms_control_messages_total", direction="up"
                ).inc()
            chan.send(message, size=CONTROL_MSG_SIZE)


class DSPSRuntime:
    """One application deployed on one simulated cluster."""

    def __init__(
        self,
        env: Environment,
        app: StreamApplication,
        scheme: CheckpointScheme,
        config: RuntimeConfig | None = None,
    ):
        self.env = env
        self.app = app
        self.scheme = scheme
        self.config = config or RuntimeConfig()
        self.rngs = RngRegistry(self.config.seed)
        self.dc = DataCenter(env, self.config.cluster)
        self.storage = SharedStorage(env, self.dc.storage_node)
        self.metrics = MetricsHub(tracer=env.trace)

        self.placement: dict[str, Node] = {}
        self.haus: dict[str, HAURuntime] = {}
        self.data_channels: dict[str, Channel] = {}  # edge_id -> channel
        self.control_down: dict[str, Channel] = {}  # controller -> HAU
        self.control_up: dict[str, Channel] = {}  # HAU -> controller
        self._control_procs = []
        self._built = False
        scheme.attach(self)

    # -- construction -----------------------------------------------------------
    def build(self) -> None:
        """Place HAUs and create all runtimes and channels (no processes yet)."""
        if self._built:
            raise RuntimeError("runtime already built")
        graph = self.app.graph
        order = sorted(graph.haus)
        workers = self.dc.workers
        for i, hau_id in enumerate(order):
            self.placement[hau_id] = workers[i % len(workers)]
        for hau_id in order:
            self._make_hau(hau_id, self.placement[hau_id], restored=None)
        self._wire_data_channels()
        for hau_id in order:
            self._wire_control(hau_id)
        self._built = True

    def _make_hau(self, hau_id: str, node: Node, restored: dict | None) -> HAURuntime:
        graph = self.app.graph
        hau = HAURuntime(
            env=self.env,
            spec=graph.haus[hau_id],
            node=node,
            in_edges=graph.in_edges(hau_id),
            out_edges=graph.out_edges(hau_id),
            scheme=self.scheme,
            rng=self.rngs.stream(f"hau:{hau_id}"),
            metrics=self.metrics,
            inbox_capacity=self.config.inbox_capacity,
            restored=restored,
            batched=self.config.batch_quantum > 0.0,
        )
        self.haus[hau_id] = hau
        return hau

    def _wire_data_channels(self) -> None:
        for edge in self.app.graph.edges:
            src_hau = self.haus[edge.src]
            dst_hau = self.haus[edge.dst]
            chan = self.dc.connect(
                src_hau.node,
                dst_hau.node,
                name=edge.edge_id,
                capacity=self.config.channel_capacity,
                batch_quantum=self.config.batch_quantum,
            )
            self.data_channels[edge.edge_id] = chan
            src_hau.attach_out_channel(edge, chan)
            dst_idx = dst_hau.in_edges.index(edge)
            dst_hau.attach_in_channel(dst_idx, chan)

    def _wire_control(self, hau_id: str) -> None:
        hau = self.haus[hau_id]
        down = self.dc.connect(self.dc.storage_node, hau.node, name=f"ctl->{hau_id}")
        up = self.dc.connect(hau.node, self.dc.storage_node, name=f"{hau_id}->ctl")
        self.control_down[hau_id] = down
        self.control_up[hau_id] = up
        hau.control_outbox = up
        self._control_procs.append(
            hau.node.spawn(self._control_listener(hau, down), label=f"{hau_id}.ctl")
        )

    def _control_listener(self, hau: HAURuntime, chan: Channel):
        from repro.cluster.channel import ChannelClosedError

        try:
            while True:
                try:
                    msg = yield chan.recv()
                except ChannelClosedError:
                    return
                yield from self.scheme.on_control(hau, msg.payload)
        except Interrupt:
            return

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        if not self._built:
            self.build()
        for hau_id in sorted(self.haus):
            self.haus[hau_id].start()
        self.scheme.start()

    def run(self, until: float) -> None:
        self.env.run(until=until)

    # -- services ---------------------------------------------------------------------
    def storage_client(self, node: Node) -> StorageClient:
        return StorageClient(node, self.storage)

    def send_control(self, hau_id: str, message: Any) -> None:
        """Controller -> HAU, fire and forget."""
        chan = self.control_down.get(hau_id)
        if chan is not None and not chan.closed:
            if self.env.trace.enabled:
                tag = message[0] if isinstance(message, tuple) and message else str(message)
                self.env.trace.emit(
                    "control.send", t=self.env.now, subject=hau_id, message=str(tag)
                )
            if self.env.telemetry.enabled:
                self.env.telemetry.counter(
                    "ms_control_messages_total", direction="down"
                ).inc()
            chan.send(message, size=CONTROL_MSG_SIZE)

    def broadcast_control(self, message: Any) -> None:
        for hau_id in sorted(self.control_down):
            self.send_control(hau_id, message)

    # -- recovery support ----------------------------------------------------------------
    def teardown_application(self) -> None:
        """Stop every HAU process and close every data channel (rollback)."""
        for hau in self.haus.values():
            hau.kill_local_processes()
        for chan in self.data_channels.values():
            chan.close()
        for chan in list(self.control_down.values()) + list(self.control_up.values()):
            chan.close()
        procs, self._control_procs = self._control_procs, []
        for p in procs:
            if p.is_alive:
                p.interrupt("teardown")

    def rewire(
        self,
        assignments: dict[str, Node],
        restored: dict[str, dict | None],
    ) -> None:
        """Recreate every HAU runtime (possibly on new nodes) from snapshots.

        Called by the recovery manager after :meth:`teardown_application`.
        Does not start the HAU processes — the caller sequences the
        recovery phases and then calls :meth:`restart_haus`.
        """
        self.placement = dict(assignments)
        self.haus = {}
        self.data_channels = {}
        self.control_down = {}
        self.control_up = {}
        for hau_id in sorted(self.app.graph.haus):
            self._make_hau(hau_id, assignments[hau_id], restored.get(hau_id))
        self._wire_data_channels()
        for hau_id in sorted(self.haus):
            self._wire_control(hau_id)

    def restart_haus(self) -> None:
        for hau_id in sorted(self.haus):
            self.haus[hau_id].start()

    def rebuild_single_hau(
        self,
        hau_id: str,
        node: Node,
        restored: dict | None,
        attach_upstream: bool = True,
    ) -> tuple[HAURuntime, list[tuple[EdgeSpec, Channel]]]:
        """Recreate one HAU on ``node`` and re-wire just its channels.

        Used by 1-safe (baseline) recovery: neighbours keep running; the
        upstream sides get replacement out-channels, the downstream sides
        get replacement in-channels with fresh receivers.  The caller
        starts the HAU when its recovery phases are done.

        With ``attach_upstream=False`` the new inbound channels are *not*
        yet attached to the upstream neighbours; they are returned so the
        caller can first replay retained tuples into them (guaranteeing
        replayed-before-new FIFO order) and attach afterwards.
        """
        graph = self.app.graph
        self.placement[hau_id] = node
        hau = self._make_hau(hau_id, node, restored)
        deferred: list[tuple[EdgeSpec, Channel]] = []
        for edge in graph.in_edges(hau_id):
            src_hau = self.haus[edge.src]
            chan = self.dc.connect(
                src_hau.node,
                node,
                name=edge.edge_id,
                capacity=self.config.channel_capacity,
                batch_quantum=self.config.batch_quantum,
            )
            self.data_channels[edge.edge_id] = chan
            if attach_upstream:
                src_hau.attach_out_channel(edge, chan)
            else:
                deferred.append((edge, chan))
            hau.attach_in_channel(hau.in_edges.index(edge), chan)
        for edge in graph.out_edges(hau_id):
            dst_hau = self.haus[edge.dst]
            if not dst_hau.node.alive:
                # The downstream neighbour is itself dead; its own recovery
                # (or its unrecoverability) will deal with this edge.
                continue
            chan = self.dc.connect(
                node,
                dst_hau.node,
                name=edge.edge_id,
                capacity=self.config.channel_capacity,
                batch_quantum=self.config.batch_quantum,
            )
            self.data_channels[edge.edge_id] = chan
            hau.attach_out_channel(edge, chan)
            dst_hau.replace_in_channel(dst_hau.in_edges.index(edge), chan)
        self._wire_control(hau_id)
        return hau, deferred

    # -- introspection -----------------------------------------------------------------
    def alive_haus(self) -> list[str]:
        return sorted(h for h, hau in self.haus.items() if hau.node.alive)

    def total_state_bytes(self) -> int:
        return sum(h.state_size() for h in self.haus.values())
