"""Experiment harness: configured runs, sweeps and figure/table drivers."""

from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    make_scheme,
    find_oracle_times,
    StateTraceRecorder,
)
from repro.harness.figures import (
    SweepCell,
    SweepResult,
    fig5_state_traces,
    fig12_fig13_sweep,
    fig14_checkpoint_time,
    fig15_instantaneous_latency,
    fig16_recovery_time,
    table1_failure_model,
    headline_numbers,
)
from repro.harness.digest import combined_digest, result_digest, result_fingerprint
from repro.harness.report import format_table, format_series
from repro.harness.sweep import (
    CellSpec,
    SweepStats,
    cached_oracle_times,
    clear_cache,
    code_fingerprint,
    default_jobs,
    run_cells,
)

__all__ = [
    "CellSpec",
    "SweepStats",
    "cached_oracle_times",
    "clear_cache",
    "code_fingerprint",
    "combined_digest",
    "default_jobs",
    "result_digest",
    "result_fingerprint",
    "run_cells",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "make_scheme",
    "find_oracle_times",
    "StateTraceRecorder",
    "SweepCell",
    "SweepResult",
    "fig5_state_traces",
    "fig12_fig13_sweep",
    "fig14_checkpoint_time",
    "fig15_instantaneous_latency",
    "fig16_recovery_time",
    "table1_failure_model",
    "headline_numbers",
    "format_table",
    "format_series",
]
