"""One experiment = one app + one scheme + one schedule on one cluster.

Mirrors the paper's measurement protocol (§IV): a warm-up, then a
measured time window (10 minutes on EC2; scaled down by default here —
set ``REPRO_FULL=1`` for paper-scale windows), with 0-8 application
checkpoints arranged within the window.  Throughput and latency are
measured at the app's probe stage (see
:meth:`repro.metrics.collectors.MetricsHub.stage_throughput`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.apps import APPS
from repro.cluster.topology import ClusterSpec
from repro.core import (
    BaselineScheme,
    MSSrc,
    MSSrcAP,
    MSSrcAPAA,
    OracleScheme,
)
from repro.core.costs import CostModel
from repro.dsps.runtime import CheckpointScheme, DSPSRuntime, RuntimeConfig
from repro.failures.injector import FailureInjector, FailurePlan
from repro.observability import Tracer, dumps_jsonl, render_summary, summarize, write_jsonl
from repro.simulation.core import Environment, Interrupt
from repro.telemetry import (
    MetricRegistry,
    Sampler,
    dumps_snapshot,
    snapshot,
    write_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.plane import MonitorPlane

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))
DEFAULT_WINDOW = 600.0 if FULL_SCALE else 150.0
DEFAULT_WARMUP = 60.0 if FULL_SCALE else 30.0
# Channel tuple-coalescing quantum in simulated seconds (see
# repro.cluster.channel.Channel.offer); 0 = per-tuple sends, the
# digest-pinned default.
DEFAULT_BATCH_QUANTUM = float(os.environ.get("REPRO_BATCH_QUANTUM", "0") or 0.0)

SCHEME_NAMES = ("none", "baseline", "ms-src", "ms-src+ap", "ms-src+ap+aa", "oracle")


@dataclass
class ExperimentConfig:
    app: str = "tmi"
    scheme: str = "none"
    n_checkpoints: int = 0
    window: float = DEFAULT_WINDOW
    warmup: float = DEFAULT_WARMUP
    seed: int = 1
    workers: int = 55
    spares: int = 60  # enough for the worst-case (whole-app) restart
    racks: int = 4
    app_params: dict[str, Any] = field(default_factory=dict)
    oracle_times: list[float] | None = None
    enable_recovery: bool = False
    costs: CostModel | None = None
    batch_quantum: float = DEFAULT_BATCH_QUANTUM
    # Live monitoring plane (repro.monitor): 0 = off, the digest-pinned
    # default.  ``monitor_slos`` maps SLO kind -> bound override.
    monitor_period: float = 0.0
    monitor_slos: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r}; choose from {sorted(APPS)}")
        if self.scheme not in SCHEME_NAMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.monitor_period < 0:
            raise ValueError(f"monitor_period must be >= 0, got {self.monitor_period!r}")
        if self.monitor_slos:
            from repro.monitor.slo import SLO_KINDS

            unknown = sorted(set(self.monitor_slos) - set(SLO_KINDS))
            if unknown:
                raise ValueError(
                    f"unknown SLO kind(s) in monitor_slos: {', '.join(unknown)}"
                )

    @property
    def end(self) -> float:
        return self.warmup + self.window

    def checkpoint_times(self) -> list[float]:
        """Evenly spaced instants inside the measured window."""
        n = self.n_checkpoints
        if n <= 0:
            return []
        return [self.warmup + (k + 0.5) * self.window / n for k in range(n)]


@dataclass
class ExperimentResult:
    """Outcome of one run: probe-stage metrics plus live handles for
    deeper inspection (scheme logs, runtime, optional state trace)."""

    config: ExperimentConfig
    throughput: int
    latency: float
    scheme: CheckpointScheme
    runtime: DSPSRuntime
    state_trace: "StateTraceRecorder" | None = None
    tracer: Tracer | None = None
    telemetry: MetricRegistry | None = None
    telemetry_sampler: Sampler | None = None
    latency_percentiles: dict[str, float] = field(default_factory=dict)
    monitor: "MonitorPlane | None" = None

    # -- monitoring plane access (cfg.monitor_period > 0) ------------------
    @property
    def alerts(self) -> dict:
        """The run's alert block (period, ticks, summary, log) — ``{}``
        when the run was unmonitored."""
        return self.monitor.as_dict() if self.monitor is not None else {}

    @property
    def health_timeline(self) -> list[dict]:
        """Per-HAU/per-rack health transitions — ``[]`` when unmonitored."""
        return list(self.monitor.health.timeline) if self.monitor is not None else []

    @property
    def checkpoint_logs(self):
        getter = getattr(self.scheme, "checkpoint_logs", None)
        return getter() if getter else []

    # -- structured trace access (run_experiment(..., trace=True)) ---------
    def trace_jsonl(self) -> str:
        """The run's trace as deterministic JSONL text."""
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        return dumps_jsonl(self.tracer)

    def write_trace(self, path: str) -> int:
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        return write_jsonl(self.tracer, path)

    def trace_summary(self) -> dict:
        """Checkpoint timelines + recovery breakdowns folded from the trace."""
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        return summarize(self.tracer)

    def trace_report(self) -> str:
        report = render_summary(self.trace_summary())
        paths = self.critical_paths()
        if paths:
            lines = ["", "critical paths:"]
            for p in paths:
                chain = " > ".join(h.kind for h in p.hops)
                lines.append(
                    f"  round {p.round_id}: {p.seconds:.3f}s"
                    f" gated by {p.gating_hau} [{chain}]"
                )
            report += "\n".join(lines)
        return report

    # -- causal timelines (repro.profiling) --------------------------------
    def timeline(self):
        """The run's causal span tree (checkpoint waves + recoveries)."""
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        from repro.profiling import build_timeline

        return build_timeline(self.tracer)

    def critical_paths(self):
        """Per-round token-propagation critical paths (complete rounds)."""
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        from repro.profiling import critical_paths

        return critical_paths(self.tracer.events)

    def write_chrome_trace(self, path: str) -> int:
        """Export the run as Perfetto-loadable trace-event JSON."""
        if self.tracer is None:
            raise RuntimeError("run_experiment(..., trace=True) to record a trace")
        from repro.profiling import write_chrome_trace

        return write_chrome_trace(self.tracer, path)

    def binned_latency(self, start: float, end: float, bin_width: float = 2.0):
        probe = self.runtime.app.params.get("probe_prefix", "")
        return self.runtime.metrics.stage_binned_latency(probe, start, end, bin_width)

    # -- telemetry access (run_experiment(..., telemetry=True)) ------------
    def telemetry_snapshot(self) -> dict:
        """Registry + sampler series as a JSON-ready (deterministic) dict."""
        if self.telemetry is None:
            raise RuntimeError(
                "run_experiment(..., telemetry=True) to record telemetry"
            )
        meta = {
            "app": self.config.app,
            "scheme": self.config.scheme,
            "seed": self.config.seed,
        }
        return snapshot(self.telemetry, sampler=self.telemetry_sampler, meta=meta)

    def telemetry_json(self) -> str:
        return dumps_snapshot(self.telemetry_snapshot())

    def write_telemetry(self, path: str) -> None:
        write_snapshot(self.telemetry_snapshot(), path)

    # -- run bundles (repro.inspect) ---------------------------------------
    def run_bundle(self) -> dict:
        """The run distilled into an in-memory RunBundle — the comparable,
        content-addressed artifact ``python -m repro.inspect diff``
        consumes.  Richer with ``trace=True`` (phase spans, critical
        paths) and ``telemetry=True`` (metric snapshot), but works with
        neither (metrics + config only)."""
        from repro.harness.sweep import reduce_result
        from repro.inspect.bundle import build_bundle

        telemetry = self.telemetry_snapshot() if self.telemetry is not None else None
        return build_bundle(reduce_result(self), telemetry=telemetry)

    def write_run_bundle(self, root: str, name: str | None = None):
        """Write the RunBundle directory under ``root``; returns its path.

        Content-addressed by default; pass ``name`` to pin a stable
        directory (committed baselines, CI artifacts)."""
        from repro.inspect.bundle import write_bundle

        return write_bundle(self.run_bundle(), root, name=name)


def make_scheme(cfg: ExperimentConfig) -> CheckpointScheme:
    """Instantiate the configured fault-tolerance scheme for one run."""
    times = cfg.checkpoint_times()
    costs = cfg.costs or CostModel()
    if cfg.scheme == "none":
        return CheckpointScheme()
    if cfg.scheme == "baseline":
        period = cfg.window / cfg.n_checkpoints if cfg.n_checkpoints else None
        return BaselineScheme(
            checkpoint_period=period,
            costs=costs,
            enable_recovery=cfg.enable_recovery,
            start_after=cfg.warmup,
        )
    if cfg.scheme == "ms-src":
        return MSSrc(checkpoint_times=times, costs=costs, enable_recovery=cfg.enable_recovery)
    if cfg.scheme == "ms-src+ap":
        return MSSrcAP(checkpoint_times=times, costs=costs, enable_recovery=cfg.enable_recovery)
    if cfg.scheme == "ms-src+ap+aa":
        period = cfg.window / max(1, cfg.n_checkpoints)
        return MSSrcAPAA(
            checkpoint_period=period,
            profile_duration=cfg.warmup * 0.8,
            sample_interval=max(0.5, period / 40.0),
            max_rounds=cfg.n_checkpoints or None,
            costs=costs,
            enable_recovery=cfg.enable_recovery,
        )
    if cfg.scheme == "oracle":
        return OracleScheme(
            checkpoint_times=list(cfg.oracle_times or times),
            costs=costs,
            enable_recovery=cfg.enable_recovery,
        )
    raise AssertionError(cfg.scheme)


class StateTraceRecorder:
    """Samples every HAU's state size over time (costless observation).

    Feeds Fig. 5 (state-size fluctuation), Fig. 10/11 (profiling and
    alert-mode demonstrations) and the Oracle's minima search.
    """

    def __init__(self, runtime: DSPSRuntime, interval: float = 1.0):
        self.runtime = runtime
        self.interval = interval
        self.samples: dict[str, list[tuple[float, int]]] = {}
        runtime.env.process(self._run(), label="state-trace")

    def _run(self):
        env = self.runtime.env
        try:
            while True:
                yield env.timeout(self.interval)
                for hau_id, hau in self.runtime.haus.items():
                    if hau.node.alive:
                        self.samples.setdefault(hau_id, []).append(
                            (env.now, hau.state_size())
                        )
        except Interrupt:
            return

    def series(self, hau_prefix: str = "") -> list[tuple[float, int]]:
        """Aggregate (summed) state-size series for HAUs matching prefix."""
        by_time: dict[float, int] = {}
        for hau_id, samples in self.samples.items():
            if hau_id.startswith(hau_prefix):
                for t, s in samples:
                    by_time[t] = by_time.get(t, 0) + s
        return sorted(by_time.items())

    def total_series(self) -> list[tuple[float, int]]:
        return self.series("")

    def minima_per_period(
        self, start: float, period: float, end: float, hau_prefix: str = ""
    ) -> list[tuple[float, int]]:
        series = [(t, s) for (t, s) in self.series(hau_prefix) if start <= t < end]
        out = []
        p = start
        while p < end:
            window = [(t, s) for (t, s) in series if p <= t < p + period]
            if window:
                out.append(min(window, key=lambda ts: ts[1]))
            p += period
        return out


def run_experiment(
    cfg: ExperimentConfig,
    trace_state: bool = False,
    failure_at: float | None = None,
    failure_targets: list[str] | None = None,
    failure_plan: "FailurePlan | None" = None,
    trace: bool = False,
    telemetry: bool = False,
    telemetry_interval: float = 1.0,
) -> ExperimentResult:
    """Build, run and measure one experiment.

    ``failure_plan`` drives a whole trace of scheduled failures
    (single-node, rack bursts, partitions, stragglers — see
    :class:`~repro.failures.injector.FailurePlan`) through a
    :class:`~repro.failures.injector.FailureInjector`; ``failure_at`` /
    ``failure_targets`` remain the simple one-shot kill used by the
    paper's worst-case experiments.

    ``trace=True`` attaches a structured :class:`Tracer` to the
    environment before the runtime is built (so every layer emits through
    it); the result's ``tracer`` / ``trace_jsonl()`` / ``trace_summary()``
    expose the recorded timeline.

    ``telemetry=True`` likewise attaches a
    :class:`~repro.telemetry.registry.MetricRegistry` before construction
    (instrumented layers cache the handle) plus a per-HAU
    :class:`~repro.telemetry.sampler.Sampler`; the result's
    ``telemetry_snapshot()`` / ``write_telemetry()`` expose the metrics.
    """
    monitor_on = cfg.monitor_period > 0.0
    env = Environment()
    # The monitoring plane reads trace events and registry metrics, so a
    # monitored run enables both (and exposes them on the result).
    tracer = env.enable_tracing() if (trace or monitor_on) else None
    registry = env.enable_telemetry() if (telemetry or monitor_on) else None
    builder = APPS[cfg.app]
    app = builder.build(seed=cfg.seed, **cfg.app_params)
    runtime = DSPSRuntime(
        env,
        app,
        make_scheme(cfg),
        RuntimeConfig(
            seed=cfg.seed,
            cluster=ClusterSpec(workers=cfg.workers, spares=cfg.spares, racks=cfg.racks),
            # Modest buffers: enough to keep the pipeline busy, small
            # enough that in-band token collection (queue drain at the
            # saturated stage) stays well inside a checkpoint period.
            channel_capacity=16,
            inbox_capacity=32,
            batch_quantum=cfg.batch_quantum,
        ),
    )
    runtime.start()
    monitor = None
    if monitor_on:
        from repro.monitor.plane import MonitorPlane
        from repro.monitor.slo import default_slos

        monitor = MonitorPlane(
            cfg.monitor_period,
            slos=default_slos(cfg.monitor_slos or None),
            racks={hid: h.node.rack for hid, h in runtime.haus.items()},
            nodes={hid: h.node.node_id for hid, h in runtime.haus.items()},
        ).attach(env)
    if failure_plan is not None and failure_plan.events:
        FailureInjector(env, runtime.dc, failure_plan).start()
    state_trace = StateTraceRecorder(runtime) if trace_state else None
    sampler = (
        Sampler(runtime, registry=registry, interval=telemetry_interval)
        if telemetry
        else None
    )

    if failure_at is not None:

        def killer():
            yield env.timeout(failure_at)
            targets = failure_targets
            if targets is None:
                # worst case: every node hosting an HAU fails (§IV-C)
                targets = sorted({h.node.node_id for h in runtime.haus.values()})
            for node_id in targets:
                node = runtime.dc.node(node_id)
                if node.alive:
                    node.fail("experiment")
                    if env.telemetry.enabled:
                        env.telemetry.counter(
                            "ms_failures_injected_total", kind="node"
                        ).inc()
                    if env.trace.enabled:
                        env.trace.emit(
                            "failure.inject",
                            t=env.now,
                            subject=node_id,
                            kind="node",
                            cause="experiment",
                        )

        env.process(killer(), label="experiment-killer")

    env.run(until=cfg.end)

    probe = app.params.get("probe_prefix", "")
    throughput = runtime.metrics.stage_throughput(probe, cfg.warmup, cfg.end)
    latency = runtime.metrics.stage_latency(probe, cfg.warmup, cfg.end)
    percentiles = runtime.metrics.stage_latency_percentiles(probe, cfg.warmup, cfg.end)
    return ExperimentResult(
        config=cfg,
        throughput=throughput,
        latency=latency,
        scheme=runtime.scheme,
        runtime=runtime,
        state_trace=state_trace,
        tracer=tracer,
        telemetry=registry,
        telemetry_sampler=sampler,
        latency_percentiles=percentiles,
        monitor=monitor,
    )


def find_oracle_times(cfg: ExperimentConfig) -> list[float]:
    """Measure a prior run and return the true per-period state minima.

    "This checkpoint time is obtained from observing prior runs, when a
    complete picture of the runtime state is available" (§IV-B).
    """
    observe = ExperimentConfig(
        app=cfg.app,
        scheme="none",
        n_checkpoints=0,
        window=cfg.window,
        warmup=cfg.warmup,
        seed=cfg.seed,
        workers=cfg.workers,
        spares=cfg.spares,
        racks=cfg.racks,
        app_params=dict(cfg.app_params),
    )
    result = run_experiment(observe, trace_state=True)
    n = max(1, cfg.n_checkpoints)
    period = cfg.window / n
    minima = result.state_trace.minima_per_period(cfg.warmup, period, cfg.end)
    return [t for (t, _s) in minima]
