"""Rack-shard fan-out: one large run as independent per-rack sub-runs.

The sweep runner (:mod:`repro.harness.sweep`) fans independent *cells*
over a process pool.  This module applies the same machinery *within*
one large experiment: a synthetic topology whose replica chains never
talk to each other decomposes into ``racks`` disjoint subgraphs — one
per failure-correlation domain — and each shard runs in its own
interpreter with its own seeded :class:`~repro.simulation.core.Environment`.
Per-shard metrics and trace streams merge back deterministically
(shard-index order; traces merge-sorted on ``(t, shard, seq)``), so a
10k-HAU topology that would take one kernel minutes completes in
``wall/racks`` on a multicore box with a byte-stable result.

What makes a run shardable (checked up front, :class:`ShardingError`
names the offending field otherwise):

* the app is ``synth`` and every stage has the same replica count ``R``
  (so replica ``g`` of every stage forms chain ``g``);
* every edge uses ``pairing: "aligned"`` — with equal counts that is a
  1:1 wiring, so chains share no channels;
* the failure plan (if any) keeps racks isolated: ``rack``/``node``/
  ``straggler`` events each land in exactly one shard.  ``partition``
  events couple racks by definition and are rejected, as is anything
  targeting the shared ``storage`` node.

Chains split into ``racks`` contiguous blocks; block ``s`` becomes shard
``s`` with ``seed_base`` set so local source replica ``j`` draws the
same RNG stream as global replica ``lo + j`` in the unsharded topology
(see :mod:`repro.apps.synth`).  The model this reproduces is a
deployment whose placement is rack-aligned with chain blocks and whose
controller/storage is replicated per rack — *not* the default
round-robin placement, so shard digests are not comparable to an
unsharded run's digest; what is preserved is per-chain source behaviour
and, on a full drain, per-HAU tuple totals (asserted in
``tests/test_shard.py``).

Merging is a pure function of the per-shard payloads: throughput and
kernel counters sum, latency is a throughput-weighted mean (as are the
percentiles — an approximation, since raw samples never leave the
worker), per-HAU counts union under their *global* ids, and the run
digest is the order-sensitive combination of the shard digests.
"""

from __future__ import annotations

import json
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any

from repro.apps.synth import DEFAULT_TOPOLOGY
from repro.failures.injector import FailurePlan, PlannedFailure
from repro.harness.digest import (
    canonical_json,
    combined_digest,
    config_fingerprint,
    result_digest,
)
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.sweep import default_jobs
from repro.telemetry.registry import MetricRegistry


class ShardingError(ValueError):
    """The run cannot be decomposed into isolated rack shards."""


_NODE_ID = re.compile(r"^(w|spare)(\d+)$")
_RACK_ID = re.compile(r"^rack(\d+)$")


@dataclass(frozen=True)
class ShardTask:
    """One shard, ready to run in a worker process.

    ``id_map`` translates the shard's local HAU ids back to the global
    topology's ids (local replica ``j`` of a stage is global replica
    ``lo + j`` of its chain block).
    """

    index: int
    config: ExperimentConfig
    failures: tuple[PlannedFailure, ...] | None
    id_map: dict[str, str]


@dataclass(frozen=True)
class ShardPlan:
    """The decomposition of one config into rack shards."""

    n_shards: int
    chains: int  # replica count R of the unsharded topology
    spans: tuple[tuple[int, int], ...]  # shard s owns chains [lo, hi)
    tasks: tuple[ShardTask, ...]


def _hau_ids(name: str, count: int) -> list[str]:
    """Replica ids exactly as :func:`repro.apps.synth._hau_ids` assigns them."""
    if count == 1:
        return [name]
    return [f"{name}{i}" for i in range(count)]


def _check_shardable(cfg: ExperimentConfig) -> tuple[dict, int]:
    """Validate the config and return ``(topology, R)``."""
    if cfg.app != "synth":
        raise ShardingError(
            f"only the synth app decomposes into rack shards, not {cfg.app!r}"
        )
    topo = cfg.app_params.get("topology", DEFAULT_TOPOLOGY)
    stages = topo.get("stages") or []
    edges = topo.get("edges") or []
    counts = {s.get("replicas", 1) for s in stages}
    if len(counts) != 1:
        raise ShardingError(
            f"stages have unequal replica counts {sorted(counts)}; chains "
            "must be 1:1 across every stage to shard"
        )
    replicas = counts.pop()
    for i, edge in enumerate(edges):
        if edge.get("pairing", "all") != "aligned":
            raise ShardingError(
                f"topology.edges[{i}] ({edge.get('src')}->{edge.get('dst')}) "
                "uses pairing 'all'; chains share channels and cannot shard"
            )
    n_shards = cfg.racks
    if replicas < n_shards:
        raise ShardingError(
            f"{replicas} chain(s) cannot fill {n_shards} rack shards"
        )
    if cfg.workers < n_shards:
        raise ShardingError(
            f"{cfg.workers} worker(s) cannot fill {n_shards} rack shards"
        )
    return topo, replicas


def _route_failures(
    plan: FailurePlan | None, n_shards: int
) -> list[list[PlannedFailure]]:
    """Map each planned failure to its owning shard, rewriting targets.

    Global node ``w{i}``/``spare{i}`` lives in rack ``i % racks`` (the
    :class:`~repro.cluster.topology.DataCenter` round-robin) and becomes
    local node ``w{i // racks}`` of that shard; ``rack{s}`` becomes the
    shard's only rack, ``rack0``.
    """
    routed: list[list[PlannedFailure]] = [[] for _ in range(n_shards)]
    if plan is None:
        return routed
    for event in plan.sorted_events():
        if event.kind == "partition":
            raise ShardingError(
                f"partition at t={event.at} couples racks by definition; "
                "the failure plan is not rack-isolated"
            )
        if event.kind == "rack":
            m = _RACK_ID.match(event.target)
            if not m or int(m.group(1)) >= n_shards:
                raise ShardingError(f"unknown rack target {event.target!r}")
            shard = int(m.group(1))
            routed[shard].append(replace(event, target="rack0"))
        elif event.kind in ("node", "straggler"):
            m = _NODE_ID.match(event.target)
            if not m:
                raise ShardingError(
                    f"target {event.target!r} is not shardable (only worker "
                    "and spare nodes belong to exactly one rack)"
                )
            prefix, i = m.group(1), int(m.group(2))
            shard = i % n_shards
            routed[shard].append(
                replace(event, target=f"{prefix}{i // n_shards}")
            )
        else:
            raise ShardingError(f"unknown failure kind {event.kind!r}")
    return routed


def plan_shards(
    cfg: ExperimentConfig, failure_plan: FailurePlan | None = None
) -> ShardPlan:
    """Decompose ``cfg`` into ``cfg.racks`` independent shard tasks."""
    topo, replicas = _check_shardable(cfg)
    n = cfg.racks
    routed = _route_failures(failure_plan, n)
    tasks: list[ShardTask] = []
    spans: list[tuple[int, int]] = []
    for s in range(n):
        lo, hi = s * replicas // n, (s + 1) * replicas // n
        spans.append((lo, hi))
        count = hi - lo
        shard_topo = {
            "stages": [
                dict(stage, replicas=count, seed_base=lo)
                for stage in topo["stages"]
            ],
            "edges": [dict(edge) for edge in topo["edges"]],
        }
        id_map: dict[str, str] = {}
        for stage in topo["stages"]:
            local = _hau_ids(stage["name"], count)
            global_ids = _hau_ids(stage["name"], replicas)[lo:hi]
            id_map.update(zip(local, global_ids))
        shard_cfg = replace(
            cfg,
            # rack s of the global cluster holds every i-th node with
            # i % racks == s — exactly (workers + racks - 1 - s) // racks
            # workers — so node-failure targets keep their hardware.
            workers=(cfg.workers + n - 1 - s) // n,
            spares=(cfg.spares + n - 1 - s) // n,
            racks=1,
            app_params={**cfg.app_params, "topology": shard_topo},
        )
        tasks.append(
            ShardTask(
                index=s,
                config=shard_cfg,
                failures=tuple(routed[s]) or None,
                id_map=id_map,
            )
        )
    return ShardPlan(
        n_shards=n, chains=replicas, spans=tuple(spans), tasks=tuple(tasks)
    )


def run_shard(task: ShardTask) -> dict[str, Any]:
    """Execute one shard and reduce it (module-level: pickled to workers).

    The payload carries metrics under *global* HAU ids, the shard's
    determinism digest, and its trace events tagged with the shard index
    (subjects translated to global ids where they name HAUs).  The
    canonical-JSON round trip makes in-process and cross-process results
    byte-identical, exactly as in :func:`repro.harness.sweep.run_cell`.
    """
    result = run_experiment(
        task.config,
        failure_plan=(
            FailurePlan(events=list(task.failures)) if task.failures else None
        ),
        trace=True,
    )
    runtime = result.runtime
    id_map = task.id_map
    haus = {
        id_map.get(hau_id, hau_id): {
            "tuples": hau.tuples_processed,
            "busy_seconds": hau.busy_time,
        }
        for hau_id, hau in sorted(runtime.haus.items())
    }
    trace = []
    assert result.tracer is not None
    for ev in result.tracer.events:
        record = ev.as_dict()
        record["shard"] = task.index
        subject = record["subject"]
        if subject in id_map:
            record["subject"] = id_map[subject]
        trace.append(record)
    complete = [
        log for log in result.checkpoint_logs if getattr(log, "complete", False)
    ]
    payload = {
        "shard": task.index,
        "config": config_fingerprint(task.config),
        "throughput": result.throughput,
        "latency": result.latency,
        "latency_percentiles": dict(sorted(result.latency_percentiles.items())),
        "haus": haus,
        "rounds_completed": len(complete),
        "kernel": runtime.env.kernel_stats(),
        "digest": result_digest(result),
        "trace": trace,
    }
    return json.loads(canonical_json(payload))


def merge_shards(payloads: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold per-shard payloads into one run-level payload.

    A pure, deterministic function of the inputs in shard-index order:
    sums for throughput/kernel counters, throughput-weighted means for
    latency metrics, a union for per-HAU counts (ids are disjoint by
    construction), ``min`` for completed rounds (a global round is done
    when its slowest shard is), and one trace stream merge-sorted on
    ``(t, shard, seq)``.
    """
    total = sum(p["throughput"] for p in payloads)
    weights = [p["throughput"] / total if total else 0.0 for p in payloads]

    def weighted(values: list[float]) -> float:
        return sum(w * v for w, v in zip(weights, values))

    haus: dict[str, Any] = {}
    for p in payloads:
        for hau_id, counts in p["haus"].items():
            if hau_id in haus:
                raise ShardingError(f"HAU {hau_id!r} appears in two shards")
            haus[hau_id] = counts
    kernel: dict[str, float] = {}
    for p in payloads:
        for key, value in p["kernel"].items():
            kernel[key] = kernel.get(key, 0) + value
    percentile_keys = sorted(payloads[0]["latency_percentiles"]) if payloads else []
    trace = sorted(
        (ev for p in payloads for ev in p["trace"]),
        key=lambda ev: (ev["t"], ev["shard"], ev["seq"]),
    )
    return {
        "throughput": total,
        "latency": weighted([p["latency"] for p in payloads]),
        "latency_percentiles": {
            k: weighted([p["latency_percentiles"][k] for p in payloads])
            for k in percentile_keys
        },
        "haus": dict(sorted(haus.items())),
        "rounds_completed": (
            min(p["rounds_completed"] for p in payloads) if payloads else 0
        ),
        "kernel": dict(sorted(kernel.items())),
        "digest": combined_digest([p["digest"] for p in payloads]),
    }


def run_sharded(
    cfg: ExperimentConfig,
    failure_plan: FailurePlan | None = None,
    jobs: int | None = None,
    registry: MetricRegistry | None = None,
) -> dict[str, Any]:
    """Plan, fan out and merge one sharded run.

    Returns ``{"n_shards", "spans", "shards", "merged"}`` where
    ``shards`` lines up index-for-index with the plan regardless of
    worker completion order.  ``jobs`` defaults to ``REPRO_JOBS`` or all
    cores; ``registry`` (optional) receives fan-out counters.
    """
    plan = plan_shards(cfg, failure_plan)
    jobs = jobs if jobs is not None else default_jobs()
    tasks = list(plan.tasks)
    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            payloads = list(pool.map(run_shard, tasks))
    else:
        payloads = [run_shard(task) for task in tasks]
    if registry is not None:
        registry.counter("ms_shard_runs_total").inc(len(payloads))
    return {
        "n_shards": plan.n_shards,
        "spans": [list(span) for span in plan.spans],
        "shards": payloads,
        "merged": merge_shards(payloads),
    }
