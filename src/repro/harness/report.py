"""Plain-text tables and series for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width text table (the benches print these, mirroring the
    paper's tables/figure series)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[float, float]], unit: str = ""
) -> str:
    """Compact one-line-per-point series dump (figure raw data)."""
    lines = [f"{name} ({len(points)} points{', ' + unit if unit else ''}):"]
    for x, y in points:
        lines.append(f"  {x:10.2f}  {y:12.4f}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
