"""Parallel sweep runner with a content-addressed result cache.

Every paper figure is a sweep of independent, deterministic experiments,
so two properties fall out for free and this module exploits both:

* **Parallelism** — cells share no state, so they fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``REPRO_JOBS`` or
  all cores) and merge back in input order.  Each worker runs its cell
  in a fresh interpreter with its own seeded
  :class:`~repro.simulation.core.Environment`, so parallel results are
  bit-identical to serial ones (asserted in
  ``tests/test_determinism_digest.py``).
* **Memoisation** — a cell's outcome is a pure function of its config
  and the code that ran it, so payloads are cached on disk keyed by
  ``sha256(config ‖ run-kwargs ‖ payload-version ‖ code fingerprint)``.
  The code fingerprint hashes every ``src/repro/**/*.py`` byte: touch
  any source file and the whole cache invalidates, so a hit can never
  serve stale physics.

Workers return *payloads* — reduced, JSON-ready dicts — rather than
:class:`~repro.harness.experiment.ExperimentResult` objects, which hold
live generators and cannot cross a process boundary.  A payload carries
everything the figure drivers consume plus the cell's determinism digest
(see :mod:`repro.harness.digest`) and the kernel counters.  Payloads are
round-tripped through canonical JSON even when computed in-process, so
fresh, parallel and cached results are byte-indistinguishable.

Cache location: ``$REPRO_CACHE_DIR`` or ``.repro-cache/`` at the repo
root; ``python -m repro.harness.sweep --clear`` (or deleting the
directory) empties it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.failures.injector import FailurePlan, PlannedFailure
from repro.harness.digest import canonical_json, config_fingerprint, result_digest
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    find_oracle_times,
    run_experiment,
)
from repro.telemetry.registry import MetricRegistry

# Bump to invalidate every cached payload when the payload *shape*
# changes (the code fingerprint already covers behaviour changes).
# v2: cells run traced and carry per-round critical-path seconds.
# v3: cells carry declarative failure traces (scenario DSL) in their key.
# v4: cells carry phase-span totals, per-round critical-path hops and
#     stragglers (the RunBundle content — see repro.inspect.bundle).
# v5: cells carry the monitoring plane's alert block and health timeline
#     (empty when cfg.monitor_period == 0 — see repro.monitor).
PAYLOAD_VERSION = 5


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else all cores."""
    configured = os.environ.get("REPRO_JOBS", "")
    if configured:
        return max(1, int(configured))
    return os.cpu_count() or 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro-cache/`` at the repo root."""
    configured = os.environ.get("REPRO_CACHE_DIR", "")
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parents[3] / ".repro-cache"


def clear_cache(cache_dir: Path | None = None) -> int:
    """Delete every cached payload; returns how many were removed."""
    cdir = cache_dir if cache_dir is not None else default_cache_dir()
    removed = 0
    if cdir.is_dir():
        for entry in sorted(cdir.glob("*.json")):
            entry.unlink()
            removed += 1
    return removed


_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``src/repro/**/*.py`` (path + bytes).

    This is the cache's code-version salt: any source edit — even a
    comment — invalidates all cached payloads.  Cheap (one read of the
    tree) and safe; a finer-grained dependency analysis is not worth a
    stale-physics bug.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            h.update(path.relative_to(package_root).as_posix().encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell: a config plus the ``run_experiment`` kwargs.

    ``bins = (start, end, bin_width)`` additionally asks the worker for
    the binned instantaneous-latency series (Fig. 15), which must be
    computed in-process because raw per-tuple latencies never leave the
    worker.

    ``failure_trace`` is a declarative failure schedule (the scenario
    DSL's lowering target): a tuple of
    :class:`~repro.failures.injector.PlannedFailure` events executed by
    a :class:`~repro.failures.injector.FailureInjector`, covering
    single-node kills, rack bursts, partitions and stragglers.
    """

    config: ExperimentConfig
    failure_at: float | None = None
    failure_targets: tuple[str, ...] | None = None
    failure_trace: tuple[PlannedFailure, ...] | None = None
    bins: tuple[float, float, float] | None = None

    def key_material(self) -> dict[str, Any]:
        return {
            "version": PAYLOAD_VERSION,
            "config": config_fingerprint(self.config),
            "failure_at": self.failure_at,
            "failure_targets": (
                list(self.failure_targets) if self.failure_targets is not None else None
            ),
            "failure_trace": (
                [dataclasses.asdict(e) for e in self.failure_trace]
                if self.failure_trace is not None
                else None
            ),
            "bins": list(self.bins) if self.bins is not None else None,
        }


def cell_key(spec: CellSpec) -> str:
    """Content address of a cell: config ‖ kwargs ‖ version ‖ code salt."""
    material = spec.key_material()
    material["code"] = code_fingerprint()
    return hashlib.sha256(canonical_json(material).encode("utf-8")).hexdigest()


def reduce_result(result: ExperimentResult, spec: CellSpec | None = None) -> dict[str, Any]:
    """Everything the figure drivers consume, as a JSON-ready dict."""
    logs = result.checkpoint_logs
    complete = [log for log in logs if getattr(log, "complete", False)]
    checkpoint = None
    if complete:
        last = complete[-1]
        slowest = last.slowest()
        checkpoint = {
            "wall_clock": last.wall_clock(),
            "token_collection": slowest.token_collection,
            "disk_io": slowest.disk_io,
            "other": slowest.other,
            "total": slowest.total,
        }
    recovery = None
    recoveries = getattr(result.scheme, "recoveries", [])
    if recoveries:
        rec = recoveries[0]
        recovery = {
            "reconnect_seconds": rec.reconnect_seconds,
            "disk_io_seconds": rec.disk_io_seconds,
            "other": rec.other,
            "total": rec.total,
            "bytes_read": rec.bytes_read,
        }
    binned = None
    if spec is not None and spec.bins is not None:
        start, end, width = spec.bins
        binned = [[t, v] for (t, v) in result.binned_latency(start, end, width)]
    critical_path = None
    phase_spans = None
    stragglers = None
    if result.tracer is not None:
        paths = result.critical_paths()
        if paths:
            seconds = [p.seconds for p in paths]
            critical_path = {
                "rounds": {str(p.round_id): p.seconds for p in paths},
                "max_seconds": max(seconds),
                "mean_seconds": sum(seconds) / len(seconds),
                "gating": {str(p.round_id): p.gating_hau for p in paths},
                "hops": {
                    str(p.round_id): [
                        {
                            "kind": h.kind,
                            "subject": h.subject,
                            "seconds": h.duration,
                        }
                        for h in p.hops
                    ]
                    for p in paths
                },
            }
        # Per-phase span totals (token-wait/safepoint-wait/snapshot/
        # disk-io) summed over every HAU checkpoint of every round, plus
        # the per-HAU breakdown — the diff engine's attribution input.
        from repro.profiling import build_timeline, straggler_report

        timeline = build_timeline(result.tracer)
        totals: dict[str, float] = {}
        per_hau: dict[str, dict[str, float]] = {}
        for wave in timeline.rounds:
            for hau_id in sorted(wave.haus):
                for span in wave.haus[hau_id].phase_spans():
                    totals[span.name] = totals.get(span.name, 0.0) + span.duration
                    bucket = per_hau.setdefault(hau_id, {})
                    bucket[span.name] = bucket.get(span.name, 0.0) + span.duration
        if totals:
            phase_spans = {
                "totals": dict(sorted(totals.items())),
                "per_hau": {
                    h: dict(sorted(phases.items()))
                    for h, phases in sorted(per_hau.items())
                },
            }
        flagged = straggler_report(timeline)
        if flagged:
            stragglers = [s.as_dict() for s in flagged]
    return {
        "config": config_fingerprint(result.config),
        "throughput": result.throughput,
        "latency": result.latency,
        "latency_percentiles": dict(sorted(result.latency_percentiles.items())),
        "rounds_completed": len(complete),
        "checkpoint": checkpoint,
        "recovery": recovery,
        "critical_path": critical_path,
        "phase_spans": phase_spans,
        "stragglers": stragglers,
        "binned_latency": binned,
        "alerts": result.alerts,
        "health_timeline": result.health_timeline,
        "digest": result_digest(result),
        "kernel": result.runtime.env.kernel_stats(),
    }


def run_cell(spec: CellSpec) -> dict[str, Any]:
    """Execute one cell and reduce it (module-level: pickled to workers).

    The canonical-JSON round trip normalises tuples/floats so an
    in-process payload is byte-identical to one that crossed a process
    boundary or the disk cache.
    """
    result = run_experiment(
        spec.config,
        failure_at=spec.failure_at,
        failure_targets=(
            list(spec.failure_targets) if spec.failure_targets is not None else None
        ),
        failure_plan=(
            FailurePlan(events=list(spec.failure_trace))
            if spec.failure_trace is not None
            else None
        ),
        # Tracing only appends to an event list — it never schedules
        # simulation events — so digests and physics are unchanged while
        # every cell gains its causal timeline (critical-path seconds).
        trace=True,
    )
    return json.loads(canonical_json(reduce_result(result, spec)))


@dataclass
class SweepStats:
    """What the runner did: worker fan-out and cache traffic."""

    jobs: int = 1
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    keys: list[str] = field(default_factory=list)

    def publish(self, registry: MetricRegistry) -> None:
        """Fold the cache counters into a telemetry registry."""
        registry.counter("ms_sweep_cache_hits_total").inc(self.cache_hits)
        registry.counter("ms_sweep_cache_misses_total").inc(self.cache_misses)


def default_bundle_dir() -> Path | None:
    """``$REPRO_BUNDLE_DIR`` if set, else no bundles are written."""
    configured = os.environ.get("REPRO_BUNDLE_DIR", "")
    return Path(configured) if configured else None


def run_cells(
    specs: list[CellSpec],
    jobs: int | None = None,
    cache_dir: Path | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
    bundle_dir: Path | None = None,
) -> list[dict[str, Any]]:
    """Run every cell — cached, then parallel — and merge in input order.

    The returned list lines up index-for-index with ``specs`` regardless
    of which cells were cache hits and in which order workers finished,
    so callers observe a deterministic, serial-equivalent sweep.

    ``bundle_dir`` (or ``$REPRO_BUNDLE_DIR``) additionally writes one
    :mod:`repro.inspect.bundle` RunBundle per cell — the comparable,
    content-addressed artifact ``python -m repro.inspect diff`` consumes
    — next to (but independent of) the payload cache.
    """
    jobs = jobs if jobs is not None else default_jobs()
    if stats is None:
        stats = SweepStats()
    stats.jobs = jobs
    stats.cells += len(specs)
    cdir = (cache_dir if cache_dir is not None else default_cache_dir()) if use_cache else None

    payloads: list[dict[str, Any] | None] = [None] * len(specs)
    pending: list[tuple[int, CellSpec, Path | None]] = []
    for i, spec in enumerate(specs):
        if cdir is None:
            pending.append((i, spec, None))
            continue
        key = cell_key(spec)
        stats.keys.append(key)
        path = cdir / f"{key}.json"
        if path.is_file():
            with open(path, encoding="utf-8") as fh:
                payloads[i] = json.load(fh)
            stats.cache_hits += 1
        else:
            stats.cache_misses += 1
            pending.append((i, spec, path))

    if pending:
        stats.executed += len(pending)
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                fresh = list(pool.map(run_cell, [spec for (_i, spec, _p) in pending]))
        else:
            fresh = [run_cell(spec) for (_i, spec, _p) in pending]
        for (i, _spec, path), payload in zip(pending, fresh):
            payloads[i] = payload
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".tmp")
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(canonical_json(payload))
                os.replace(tmp, path)  # atomic: concurrent sweeps never see partial writes

    bdir = bundle_dir if bundle_dir is not None else default_bundle_dir()
    if bdir is not None:
        # deferred: keep the sweep importable without repro.inspect
        from repro.inspect.bundle import build_bundle, write_bundle

        for payload in payloads:
            write_bundle(build_bundle(payload), bdir)
    return payloads  # type: ignore[return-value]


def cached_oracle_times(
    cfg: ExperimentConfig,
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> list[float]:
    """:func:`find_oracle_times` behind the same content-addressed cache.

    The observation run is the most expensive part of Figs. 14/16; its
    minima depend only on the config and the code, so they memoise under
    the same invalidation rule as cell payloads.
    """
    if not use_cache:
        return find_oracle_times(cfg)
    material = {
        "kind": "oracle-times",
        "version": PAYLOAD_VERSION,
        "config": config_fingerprint(cfg),
        "code": code_fingerprint(),
    }
    key = hashlib.sha256(canonical_json(material).encode("utf-8")).hexdigest()
    cdir = cache_dir if cache_dir is not None else default_cache_dir()
    path = cdir / f"{key}.json"
    if path.is_file():
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    times = find_oracle_times(cfg)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(times))
    os.replace(tmp, path)
    return times


def main(argv: list[str] | None = None) -> int:
    """CLI for cache management: ``--clear`` empties the cache dir."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clear", action="store_true", help="delete every cached payload")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache/)")
    args = parser.parse_args(argv)
    cdir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    if args.clear:
        print(f"removed {clear_cache(cdir)} cached payload(s) from {cdir}")
        return 0
    entries = sorted(cdir.glob("*.json")) if cdir.is_dir() else []
    total = sum(e.stat().st_size for e in entries)
    print(f"{cdir}: {len(entries)} cached payload(s), {total} bytes")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
