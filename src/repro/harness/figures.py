"""Per-figure/table drivers: each returns the data the paper plots.

Every function is pure orchestration over :mod:`repro.harness.experiment`
and returns plain data structures; the benchmarks print them via
:mod:`repro.harness.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.failures.model import ABE_CLUSTER, GOOGLE_DC, ClusterFailureModel
from repro.harness.experiment import (
    DEFAULT_WARMUP,
    DEFAULT_WINDOW,
    ExperimentConfig,
    run_experiment,
)
from repro.harness.sweep import CellSpec, SweepStats, cached_oracle_times, run_cells

MS_SCHEMES = ("baseline", "ms-src", "ms-src+ap", "ms-src+ap+aa")

# App parameter overrides used by all figure drivers.  In fast mode the
# measurement window shrinks; per-checkpoint state must shrink with it or
# the relative cost of a checkpoint is exaggerated (paper scale: 600 s).
# TMI's k-means window must also fit inside the measurement window.
def default_app_params(app: str, window: float) -> dict[str, Any]:
    scale = min(1.0, window / 600.0)
    if app == "tmi":
        return {"n_minutes": max(0.5, window / 4.0 / 60.0)}
    return {"state_scale": scale}


# --- Table I --------------------------------------------------------------------


def table1_failure_model(seed: int = 0, samples: int = 5) -> dict[str, Any]:
    """AFN100 per failure cause for the Google DC and the Abe cluster."""
    out: dict[str, Any] = {}
    for profile in (GOOGLE_DC, ABE_CLUSTER):
        model = ClusterFailureModel(profile, rng=np.random.default_rng(seed))
        expected = model.expected_afn100()
        ranges = model.table_rows(samples=samples)
        _rows, stats = model.sample_year()
        out[profile.name] = {
            "expected": expected,
            "ranges": ranges,
            "burst_event_share": stats["burst_event_share"],
        }
    return out


# --- Fig. 5 ----------------------------------------------------------------------


def fig5_state_traces(
    apps: list[str] | None = None,
    window: float = DEFAULT_WINDOW,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    tmi_windows: tuple[float, ...] = (1.0, 5.0, 10.0),
) -> dict[str, list[tuple[float, float]]]:
    """Aggregate dynamic-state-size series per application (MB).

    TMI is traced once per N (the paper plots N = 1, 5, 10 minutes); N is
    scaled to the measurement window in fast mode.
    """
    apps = apps or ["tmi", "bcp", "signalguru"]
    traces: dict[str, list[tuple[float, float]]] = {}
    for app in apps:
        if app == "tmi":
            for n in tmi_windows:
                scaled_n = n * (window / 600.0)
                cfg = ExperimentConfig(
                    app=app, scheme="none", window=window, warmup=warmup, seed=seed,
                    app_params={"n_minutes": max(scaled_n, 0.25)},
                )
                res = run_experiment(cfg, trace_state=True)
                series = res.state_trace.series("A")
                traces[f"tmi(N={n:g})"] = [(t, s / 1e6) for (t, s) in series]
        else:
            prefix = {"bcp": "H", "signalguru": "M"}[app]
            cfg = ExperimentConfig(
                app=app, scheme="none", window=window, warmup=warmup, seed=seed,
                app_params=default_app_params(app, window),
            )
            res = run_experiment(cfg, trace_state=True)
            traces[app] = [(t, s / 1e6) for (t, s) in res.state_trace.series(prefix)]
    return traces


# --- Figs. 12 & 13 ------------------------------------------------------------------


@dataclass
class SweepCell:
    """One (application, scheme, checkpoint-count) measurement."""

    app: str
    scheme: str
    n_checkpoints: int
    throughput: int
    latency: float
    rounds_completed: int
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    # Slowest per-round token-propagation critical path (seconds); 0.0
    # when no round completed (n=0 sweeps, scheme "none").
    critical_path_seconds: float = 0.0
    # Checkpoint phase-span totals (token-wait/safepoint-wait/snapshot/
    # disk-io seconds) — the diff engine's attribution input; empty when
    # no round completed.
    phase_totals: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All cells of the Fig. 12/13 sweep, with normalisation helpers."""

    cells: list[SweepCell] = field(default_factory=list)

    def cell(self, app: str, scheme: str, n: int) -> SweepCell | None:
        """The cell for (app, scheme, n), or None if it was not swept."""
        for c in self.cells:
            if (c.app, c.scheme, c.n_checkpoints) == (app, scheme, n):
                return c
        return None

    def normalized_throughput(self, app: str) -> dict[str, list[tuple[int, float]]]:
        """Normalised to the baseline at zero checkpoints (Fig. 12)."""
        base = self.cell(app, "baseline", 0)
        if base is None or base.throughput == 0:
            return {}
        out: dict[str, list[tuple[int, float]]] = {}
        for c in self.cells:
            if c.app == app:
                out.setdefault(c.scheme, []).append(
                    (c.n_checkpoints, c.throughput / base.throughput)
                )
        return {k: sorted(v) for k, v in out.items()}

    def normalized_latency(self, app: str) -> dict[str, list[tuple[int, float]]]:
        """Normalised to the baseline at zero checkpoints (Fig. 13)."""
        base = self.cell(app, "baseline", 0)
        if base is None or base.latency == 0:
            return {}
        out: dict[str, list[tuple[int, float]]] = {}
        for c in self.cells:
            if c.app == app:
                out.setdefault(c.scheme, []).append(
                    (c.n_checkpoints, c.latency / base.latency)
                )
        return {k: sorted(v) for k, v in out.items()}


def fig12_fig13_sweep(
    apps: list[str] | None = None,
    checkpoint_counts: list[int] | None = None,
    schemes: list[str] | None = None,
    window: float = DEFAULT_WINDOW,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    jobs: int | None = None,
    use_cache: bool = True,
    stats: SweepStats | None = None,
) -> SweepResult:
    """The common-case performance sweep behind Figs. 12 and 13.

    Cells fan out over :func:`repro.harness.sweep.run_cells` (parallel
    workers + content-addressed cache); the resulting cell list is in
    the same app × scheme × checkpoint-count order as the serial loop.
    """
    apps = apps or ["tmi", "bcp", "signalguru"]
    checkpoint_counts = checkpoint_counts if checkpoint_counts is not None else [0, 1, 3, 5, 8]
    schemes = schemes or list(MS_SCHEMES)
    # First pass: lay out every cell (None spec = the degenerate aa@0
    # case, filled from the ms-src+ap@0 cell after the sweep runs).
    entries: list[tuple[str, str, int, int | None]] = []
    specs: list[CellSpec] = []
    for app in apps:
        params = default_app_params(app, window)
        for scheme in schemes:
            for n in checkpoint_counts:
                if scheme == "ms-src+ap+aa" and n == 0:
                    # aa with no checkpoints degenerates to ap with none
                    entries.append((app, scheme, 0, None))
                    continue
                # aa needs its profiling pass to observe at least one full
                # checkpoint period of steady state before the measured
                # window opens.
                wu = warmup + (window / n if scheme == "ms-src+ap+aa" and n else 0.0)
                cfg = ExperimentConfig(
                    app=app, scheme=scheme, n_checkpoints=n,
                    window=window, warmup=wu, seed=seed, app_params=dict(params),
                )
                specs.append(CellSpec(config=cfg))
                entries.append((app, scheme, n, len(specs) - 1))
    payloads = run_cells(specs, jobs=jobs, use_cache=use_cache, stats=stats)
    result = SweepResult()
    for app, scheme, n, idx in entries:
        if idx is None:
            ref = result.cell(app, "ms-src+ap", 0)
            if ref is not None:
                result.cells.append(
                    SweepCell(
                        app, scheme, 0, ref.throughput, ref.latency, 0,
                        latency_p50=ref.latency_p50,
                        latency_p95=ref.latency_p95,
                        latency_p99=ref.latency_p99,
                        critical_path_seconds=ref.critical_path_seconds,
                        phase_totals=dict(ref.phase_totals),
                    )
                )
            continue
        p = payloads[idx]
        pct = p["latency_percentiles"]
        cp = p.get("critical_path") or {}
        phases = p.get("phase_spans") or {}
        result.cells.append(
            SweepCell(
                app, scheme, n, p["throughput"], p["latency"], p["rounds_completed"],
                latency_p50=pct.get("p50", 0.0),
                latency_p95=pct.get("p95", 0.0),
                latency_p99=pct.get("p99", 0.0),
                critical_path_seconds=cp.get("max_seconds", 0.0),
                phase_totals=dict(phases.get("totals") or {}),
            )
        )
    return result


def headline_numbers(sweep: SweepResult, apps: list[str] | None = None) -> dict[str, float]:
    """The paper's §I claims, derived from the sweep.

    * source preservation: MS-src vs baseline at 0 checkpoints
      (paper: +35% throughput, -9% latency);
    * +ap: MS-src+ap vs MS-src at 3 checkpoints (paper: +28% throughput);
    * +aa: MS-src+ap+aa vs MS-src+ap at 3 checkpoints (paper: +14%);
    * total: MS-src+ap+aa vs baseline at 3 checkpoints
      (paper: +226% throughput, -57% latency).
    """
    apps = apps or ["tmi", "bcp", "signalguru"]

    def ratio(metric: str, scheme_a: str, scheme_b: str, n: int) -> float:
        vals = []
        for app in apps:
            a = sweep.cell(app, scheme_a, n)
            b = sweep.cell(app, scheme_b, n)
            if a and b and getattr(b, metric):
                vals.append(getattr(a, metric) / getattr(b, metric))
        return sum(vals) / len(vals) if vals else float("nan")

    return {
        "src_thpt_gain_0ckpt": ratio("throughput", "ms-src", "baseline", 0) - 1.0,
        "src_lat_gain_0ckpt": 1.0 - ratio("latency", "ms-src", "baseline", 0),
        "ap_thpt_gain_3ckpt": ratio("throughput", "ms-src+ap", "ms-src", 3) - 1.0,
        "aa_thpt_gain_3ckpt": ratio("throughput", "ms-src+ap+aa", "ms-src+ap", 3) - 1.0,
        "total_thpt_gain_3ckpt": ratio("throughput", "ms-src+ap+aa", "baseline", 3) - 1.0,
        "total_lat_gain_3ckpt": 1.0 - ratio("latency", "ms-src+ap+aa", "baseline", 3),
    }


# --- Fig. 14 ------------------------------------------------------------------------


def fig14_checkpoint_time(
    apps: list[str] | None = None,
    window: float = DEFAULT_WINDOW,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    n_checkpoints: int = 2,
    jobs: int | None = None,
    use_cache: bool = True,
) -> dict[str, dict[str, dict[str, float]]]:
    """Checkpoint time breakdown per app per scheme.

    MS-src reports total wall clock (token propagation overlaps individual
    checkpoints); MS-src+ap(+aa) and Oracle report the slowest individual
    checkpoint broken into token collection / disk I/O / other (§IV-B).
    """
    apps = apps or ["tmi", "bcp", "signalguru"]
    schemes = ("ms-src", "ms-src+ap", "ms-src+ap+aa", "oracle")
    specs: list[CellSpec] = []
    for app in apps:
        params = default_app_params(app, window)
        oracle_base = ExperimentConfig(
            app=app, scheme="oracle", n_checkpoints=n_checkpoints,
            window=window, warmup=warmup, seed=seed, app_params=dict(params),
        )
        oracle_times = cached_oracle_times(oracle_base, use_cache=use_cache)
        for scheme in schemes:
            wu = warmup + (window / n_checkpoints if scheme == "ms-src+ap+aa" else 0.0)
            cfg = ExperimentConfig(
                app=app, scheme=scheme, n_checkpoints=n_checkpoints,
                window=window, warmup=wu, seed=seed, app_params=dict(params),
                oracle_times=oracle_times,
            )
            specs.append(CellSpec(config=cfg))
    payloads = run_cells(specs, jobs=jobs, use_cache=use_cache)
    out: dict[str, dict[str, dict[str, float]]] = {}
    it = iter(payloads)
    for app in apps:
        out[app] = {}
        for scheme in schemes:
            ckpt = next(it)["checkpoint"]
            if ckpt is None:
                out[app][scheme] = {"total": float("nan")}
            elif scheme == "ms-src":
                out[app][scheme] = {"total": ckpt["wall_clock"]}
            else:
                out[app][scheme] = {
                    "token_collection": ckpt["token_collection"],
                    "disk_io": ckpt["disk_io"],
                    "other": ckpt["other"],
                    "total": ckpt["total"],
                }
    return out


# --- Fig. 15 -----------------------------------------------------------------------


def fig15_instantaneous_latency(
    app: str = "tmi",
    window: float = DEFAULT_WINDOW,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    bin_width: float = 3.0,
    jobs: int | None = None,
    use_cache: bool = True,
) -> dict[str, list[tuple[float, float]]]:
    """Instantaneous (binned) latency around a single mid-window checkpoint."""
    params = default_app_params(app, window)
    schemes = ("ms-src", "ms-src+ap", "ms-src+ap+aa")
    specs: list[CellSpec] = []
    for scheme in schemes:
        wu = warmup + (window if scheme == "ms-src+ap+aa" else 0.0)
        cfg = ExperimentConfig(
            app=app, scheme=scheme, n_checkpoints=1,
            window=window, warmup=wu, seed=seed, app_params=dict(params),
        )
        specs.append(CellSpec(config=cfg, bins=(wu, wu + window, bin_width)))
    payloads = run_cells(specs, jobs=jobs, use_cache=use_cache)
    return {
        scheme: [(t, v) for (t, v) in payload["binned_latency"]]
        for scheme, payload in zip(schemes, payloads)
    }


# --- Fig. 16 ------------------------------------------------------------------------


def fig16_recovery_time(
    apps: list[str] | None = None,
    window: float = DEFAULT_WINDOW,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    jobs: int | None = None,
    use_cache: bool = True,
) -> dict[str, dict[str, dict[str, float]]]:
    """Worst-case recovery: all nodes hosting the application fail.

    MS-src and MS-src+ap share recovery (same checkpointed bytes), so one
    entry covers both, per the paper.  MS-src+ap+aa and Oracle recover
    from smaller checkpoints.
    """
    apps = apps or ["tmi", "bcp", "signalguru"]
    fail_at_frac = 0.6
    schemes = ("ms-src+ap", "ms-src+ap+aa", "oracle")
    specs: list[CellSpec] = []
    for app in apps:
        params = default_app_params(app, window)
        base = ExperimentConfig(
            app=app, scheme="oracle", n_checkpoints=2,
            window=window, warmup=warmup, seed=seed, app_params=dict(params),
        )
        oracle_times = cached_oracle_times(base, use_cache=use_cache)
        for scheme in schemes:
            wu = warmup + (window / 2 if scheme == "ms-src+ap+aa" else 0.0)
            cfg = ExperimentConfig(
                app=app, scheme=scheme, n_checkpoints=2,
                window=window, warmup=wu, seed=seed, app_params=dict(params),
                oracle_times=oracle_times, enable_recovery=True,
            )
            specs.append(CellSpec(config=cfg, failure_at=wu + fail_at_frac * window))
    payloads = run_cells(specs, jobs=jobs, use_cache=use_cache)
    out: dict[str, dict[str, dict[str, float]]] = {}
    it = iter(payloads)
    for app in apps:
        out[app] = {}
        for scheme in schemes:
            rec = next(it)["recovery"]
            if rec is None:
                out[app][scheme] = {"total": float("nan")}
                continue
            out[app][scheme] = {
                "reconnection": rec["reconnect_seconds"],
                "disk_io": rec["disk_io_seconds"],
                "other": rec["other"],
                "total": rec["total"],
                "bytes_read_mb": rec["bytes_read"] / 1e6,
            }
    return out
