"""Determinism digests: canonical fingerprints of experiment outcomes.

The simulator promises bit-identical behaviour for a given seed.  This
module turns that promise into something checkable: a *fingerprint* is a
JSON-ready dict of everything an experiment decided (per-HAU tuple
counts, checkpoint-round timelines, recovery timelines, probe metrics),
and a *digest* is the SHA-256 of its canonical serialisation.  Two runs
agree on their digest iff they agreed on every recorded decision.

Used three ways:

* the committed baseline (``benchmarks/DIGEST_baseline.json``) proves the
  kernel fast paths did not perturb the event order of the seed engine;
* ``tests/test_determinism_digest.py`` proves run-twice and
  serial-vs-parallel sweeps are bit-identical;
* ``python -m repro.harness.digest`` recomputes the canonical configs and
  compares them against the baseline (the CI determinism gate).

Fingerprints draw exclusively from simulation state, so the canonical
JSON (``sort_keys`` + shortest-repr floats) is byte-stable across runs
of the same build.  Floating-point results can legitimately differ
across numpy/BLAS builds, so the baseline records the environment it was
produced under and the CLI refuses to compare across mismatched
environments instead of reporting a false failure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
from typing import Any

import numpy

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment


def canonical_json(obj: Any) -> str:
    """Deterministic serialisation: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(cfg: ExperimentConfig) -> dict[str, Any]:
    """The config as a JSON-ready dict (nested dataclasses flattened)."""
    out = dataclasses.asdict(cfg)
    # Fields added after the baseline was pinned are omitted while at
    # their inert default, so historical digests stay comparable; a
    # non-default value genuinely changes behaviour and must fingerprint.
    if out.get("batch_quantum") == 0.0:
        del out["batch_quantum"]
    if out.get("monitor_period") == 0.0:
        del out["monitor_period"]
    if out.get("monitor_slos") == {}:
        del out["monitor_slos"]
    # app_params values are scalars/lists in every driver; round-trip
    # through canonical JSON to fail loudly on anything exotic.
    canonical_json(out)
    return out


def result_fingerprint(result: ExperimentResult) -> dict[str, Any]:
    """Everything the run decided, as a JSON-ready deterministic dict."""
    runtime = result.runtime
    haus = {
        hau_id: {"tuples": hau.tuples_processed, "busy_seconds": hau.busy_time}
        for hau_id, hau in sorted(runtime.haus.items())
    }
    rounds = []
    for log in result.checkpoint_logs:
        rounds.append(
            {
                "round": log.round_id,
                "started_at": log.started_at,
                "completed_at": log.completed_at,
                "haus": {
                    hau_id: {
                        "command_at": bd.command_at,
                        "tokens_done_at": bd.tokens_done_at,
                        "write_start_at": bd.write_start_at,
                        "write_end_at": bd.write_end_at,
                        "state_bytes": bd.state_bytes,
                    }
                    for hau_id, bd in sorted(log.haus.items())
                },
            }
        )
    recoveries = [
        {
            "started_at": rec.started_at,
            "completed_at": rec.completed_at,
            "reconnect_seconds": rec.reconnect_seconds,
            "disk_io_seconds": rec.disk_io_seconds,
            "other": rec.other,
            "bytes_read": rec.bytes_read,
            "haus_recovered": rec.haus_recovered,
        }
        for rec in getattr(result.scheme, "recoveries", [])
    ]
    return {
        "config": config_fingerprint(result.config),
        "throughput": result.throughput,
        "latency": result.latency,
        "latency_percentiles": dict(sorted(result.latency_percentiles.items())),
        "haus": haus,
        "rounds": rounds,
        "recoveries": recoveries,
    }


def fingerprint_digest(fingerprint: dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(fingerprint).encode("utf-8")).hexdigest()


def result_digest(result: ExperimentResult) -> str:
    """SHA-256 over the run's canonical fingerprint."""
    return fingerprint_digest(result_fingerprint(result))


def combined_digest(digests: list[str]) -> str:
    """Order-sensitive digest of a digest sequence (a whole sweep)."""
    return hashlib.sha256("\n".join(digests).encode("ascii")).hexdigest()


# -- canonical configs (the committed-baseline set) ---------------------------

def canonical_cases() -> dict[str, tuple[ExperimentConfig, dict[str, Any]]]:
    """Small runs covering every scheme family and the recovery path.

    ``{name: (config, run_experiment kwargs)}`` — deterministic order,
    sized so the whole set stays under ~10 s.
    """
    common = dict(window=40.0, warmup=10.0, workers=8, spares=12, racks=2, seed=1)
    cases: dict[str, tuple[ExperimentConfig, dict[str, Any]]] = {
        "tmi/baseline@2": (
            ExperimentConfig(
                app="tmi", scheme="baseline", n_checkpoints=2,
                app_params={"n_minutes": 0.25}, **common,
            ),
            {},
        ),
        "tmi/ms-src+ap@2": (
            ExperimentConfig(
                app="tmi", scheme="ms-src+ap", n_checkpoints=2,
                app_params={"n_minutes": 0.25}, **common,
            ),
            {},
        ),
        "bcp/ms-src@1": (
            ExperimentConfig(
                app="bcp", scheme="ms-src", n_checkpoints=1,
                app_params={"state_scale": 0.1}, **common,
            ),
            {},
        ),
        "tmi/ms-src+ap@2+failure": (
            ExperimentConfig(
                app="tmi", scheme="ms-src+ap", n_checkpoints=2,
                enable_recovery=True, app_params={"n_minutes": 0.25}, **common,
            ),
            {"failure_at": 35.0},
        ),
    }
    return cases


def environment_fingerprint() -> dict[str, str]:
    """The bits of the host environment float results may depend on."""
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
    }


def compute_baseline(cases: list[str] | None = None) -> dict[str, Any]:
    """Run every canonical case (or the named subset) and collect digests."""
    selected = canonical_cases()
    if cases is not None:
        unknown = sorted(set(cases) - set(selected))
        if unknown:
            raise KeyError(f"unknown canonical case(s): {', '.join(unknown)}")
        selected = {k: v for k, v in selected.items() if k in set(cases)}
    digests = {}
    for name, (cfg, kwargs) in selected.items():
        digests[name] = result_digest(run_experiment(cfg, **kwargs))
    return {
        "environment": environment_fingerprint(),
        "digests": digests,
        "combined": combined_digest([digests[k] for k in sorted(digests)]),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI: ``check`` (default) compares against the committed baseline;
    ``--write <path>`` regenerates it (after an intentional model change);
    ``--json`` prints the current digests without comparing (the
    iteration-order canary diffs this output across PYTHONHASHSEED)."""
    import argparse
    from pathlib import Path

    default_baseline = (
        Path(__file__).resolve().parents[3] / "benchmarks" / "DIGEST_baseline.json"
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(default_baseline))
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate the baseline file instead of checking against it",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the freshly computed digests as JSON and exit (no "
        "baseline comparison)",
    )
    parser.add_argument(
        "--cases", default=None, metavar="NAMES",
        help="comma-separated subset of canonical case names to run",
    )
    args = parser.parse_args(argv)

    case_filter = [c for c in args.cases.split(",") if c] if args.cases else None
    try:
        current = compute_baseline(case_filter)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(current, indent=2, sort_keys=True))
        return 0
    if args.write:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(current['digests'])} digests to {args.baseline}")
        return 0

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("environment") != current["environment"]:
        print(
            "digest check skipped: environment mismatch "
            f"(baseline {baseline.get('environment')}, current {current['environment']}) — "
            "float results are only comparable on the recorded build"
        )
        return 0
    failures = 0
    compare = sorted(baseline["digests"])
    if case_filter is not None:
        compare = [n for n in compare if n in set(case_filter)]
    for name in compare:
        want = baseline["digests"][name]
        got = current["digests"].get(name)
        status = "ok" if got == want else "MISMATCH"
        if got != want:
            failures += 1
        print(f"  {status}: {name} {got}")
    if failures:
        print(f"FAIL: {failures} digest mismatch(es) — event order or model behaviour changed")
        return 1
    print(f"OK: {len(compare)} digests bit-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
