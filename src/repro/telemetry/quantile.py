"""Streaming and exact percentile estimation (stdlib only).

:class:`P2Quantile` implements the P² algorithm (Jain & Chlamtac, CACM
1985): a single-pass estimator that tracks one quantile with five
markers — O(1) memory and O(1) per observation, no sample buffer.  It is
what :class:`~repro.telemetry.registry.Histogram` uses for p50/p95/p99,
so a telemetry run never accumulates unbounded per-tuple latency lists.

``exact_percentile`` is the reference implementation (sorted sample,
linear interpolation) used for the MetricsHub's exact percentile
methods and by the tests that bound the P² error.
``nearest_rank_percentile`` is the exact order statistic the estimator
reports while fewer observations than markers have arrived: with a
3-sample window, p99 is the 3rd order statistic — an actual observed
value, never an interpolation past the sample (monitor windows are
routinely this sparse).
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def exact_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted sample.

    ``q`` is a fraction in [0, 1].  Returns 0.0 for an empty sample
    (matching the collectors' convention for empty windows).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q!r}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


def nearest_rank_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank order statistic of an ascending-sorted sample.

    The smallest observed value v such that at least ``q`` of the sample
    is <= v (``ceil(q * n)``-th order statistic; 0.0 for an empty
    sample).  Always returns an actual observation — the right answer
    for tail quantiles of tiny samples, where interpolation invents
    values nobody measured.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q!r}")
    n = len(sorted_values)
    if n == 0:
        return 0.0
    rank = max(1, math.ceil(q * n))
    return float(sorted_values[rank - 1])


class P2Quantile:
    """One quantile tracked with the P² five-marker method.

    Until five observations arrive the estimate is exact (sorted buffer);
    from the sixth on, marker heights are adjusted with the parabolic
    (or, when that would break monotonicity, linear) formula.  Entirely
    deterministic: same observation sequence, same estimate.
    """

    __slots__ = ("p", "count", "_first", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile fraction must be in (0, 1), got {p!r}")
        self.p = float(p)
        self.count = 0
        self._first: list[float] = []  # first five observations
        self._q: list[float] = []  # marker heights
        self._n: list[float] = []  # actual marker positions
        self._np: list[float] = []  # desired marker positions
        self._dn: tuple[float, ...] = ()

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self._first.append(x)
            if self.count == 5:
                self._first.sort()
                p = self.p
                self._q = list(self._first)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
                self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
            return
        q, n = self._q, self._n
        # locate the cell k such that q[k] <= x < q[k+1]
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 4):
                if x < q[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                sign = 1.0 if d >= 0.0 else -1.0
                cand = self._parabolic(i, sign)
                if not (q[i - 1] < cand < q[i + 1]):
                    cand = self._linear(i, sign)
                q[i] = cand
                n[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current estimate (exact while count <= 5; 0.0 when empty).

        The small-sample path reports the nearest-rank order statistic —
        an actual observation — rather than interpolating: p99 of a
        3-sample window is its maximum, not a value 2% below it that
        was never measured.  Monitor windows are routinely this sparse.
        """
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return nearest_rank_percentile(sorted(self._first), self.p)
        return self._q[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<P2Quantile p={self.p} n={self.count} ~{self.value():.6g}>"
