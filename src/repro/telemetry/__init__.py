"""Runtime telemetry: metric registry, per-HAU sampling, exporters.

Counterpart to :mod:`repro.observability` (structured *traces*): this
package carries aggregated *metrics* — counters, gauges and streaming
percentile histograms — registered on ``env.telemetry`` and exported as
a deterministic JSON snapshot or Prometheus text.

``repro.telemetry.report`` (the CLI renderer) is intentionally not
imported here: it needs the harness, which sits above this package.
"""

from repro.telemetry.export import (
    dumps_snapshot,
    read_snapshot,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.telemetry.quantile import P2Quantile, exact_percentile
from repro.telemetry.registry import (
    DEFAULT_PERCENTILES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    ensure_registry,
)
from repro.telemetry.sampler import DEFAULT_INTERVAL, SERIES_METRICS, Sampler

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "P2Quantile",
    "SERIES_METRICS",
    "Sampler",
    "dumps_snapshot",
    "ensure_registry",
    "exact_percentile",
    "read_snapshot",
    "snapshot",
    "to_prometheus",
    "write_snapshot",
]
