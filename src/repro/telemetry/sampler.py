"""Periodic per-HAU time-series sampling.

A :class:`Sampler` rides on a live
:class:`~repro.dsps.runtime.DSPSRuntime`: every ``interval`` simulated
seconds it snapshots the per-HAU quantities the paper's own adaptive
logic reasons about (§III-C) — input-queue depth, preservation-buffer
bytes, ``state_size()``, in-flight tuples on the out-channels, held-back
tuples behind checkpoint tokens, and the last checkpoint write duration
— into both the registry's gauges (latest value, for the Prometheus
export) and an in-memory time series (for the JSON snapshot and the
report's per-HAU tables).

Sampling is a costless observation (like
:class:`~repro.harness.experiment.StateTraceRecorder`): it spends no
simulated resources, so a sampled run measures identically to an
unsampled one.
"""

from __future__ import annotations

from repro.telemetry.registry import RegistryLike, ensure_registry

DEFAULT_INTERVAL = 1.0

# Keep in sync with repro.core.preservation.PRESERVE_NS (imported lazily
# to avoid a package-level import cycle through dsps/simulation).
_PRESERVE_NS = "preserve"

# The per-HAU gauge series the sampler maintains, in export order.
SERIES_METRICS = (
    "ms_hau_inbox_depth",
    "ms_hau_state_bytes",
    "ms_hau_inflight_tuples",
    "ms_hau_holdback_tuples",
    "ms_hau_preserve_bytes",
    "ms_hau_ckpt_write_seconds",
)


class Sampler:
    """Samples per-HAU gauges on a fixed cadence into time series."""

    def __init__(
        self,
        runtime,
        registry: RegistryLike | None = None,
        interval: float = DEFAULT_INTERVAL,
    ):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval!r}")
        self.runtime = runtime
        self.registry = ensure_registry(
            registry if registry is not None else runtime.env.telemetry
        )
        self.interval = float(interval)
        self.samples_taken = 0
        # metric name -> hau_id -> [(sim time, value), ...]
        self.series: dict[str, dict[str, list[tuple[float, float]]]] = {
            name: {} for name in SERIES_METRICS
        }
        runtime.env.process(self._run(), label="telemetry-sampler")

    # -- the sampling process ---------------------------------------------
    def _run(self):
        from repro.simulation.core import Interrupt  # deferred: import cycle

        env = self.runtime.env
        try:
            while True:
                yield env.timeout(self.interval)
                self.sample_once()
        except Interrupt:
            return

    def sample_once(self) -> None:
        """Take one snapshot of every live HAU (also usable manually)."""
        env = self.runtime.env
        now = env.now
        for hau_id in sorted(self.runtime.haus):
            hau = self.runtime.haus[hau_id]
            if not hau.node.alive:
                continue
            self._record(now, "ms_hau_inbox_depth", hau_id, float(len(hau.inbox)))
            self._record(now, "ms_hau_state_bytes", hau_id, float(hau.state_size()))
            inflight = sum(
                chan.in_flight + chan.pending
                for chan in hau.out_channels.values()
                if not chan.closed
            )
            self._record(now, "ms_hau_inflight_tuples", hau_id, float(inflight))
            holdback = sum(len(q) for q in hau.holdback.values())
            self._record(now, "ms_hau_holdback_tuples", hau_id, float(holdback))
            self._record(
                now, "ms_hau_preserve_bytes", hau_id, self._preserve_bytes(hau_id)
            )
            last_write = self.registry.get("ms_hau_ckpt_write_seconds", hau=hau_id)
            self._record(
                now,
                "ms_hau_ckpt_write_seconds",
                hau_id,
                float(last_write.value) if last_write is not None else 0.0,
            )
        self.samples_taken += 1

    def _record(self, t: float, metric: str, hau_id: str, value: float) -> None:
        self.series[metric].setdefault(hau_id, []).append((t, value))
        if metric != "ms_hau_ckpt_write_seconds":
            # write-duration gauges are owned by the checkpoint sites;
            # everything else the sampler keeps current itself.
            # names come from SERIES_METRICS, each documented in DESIGN.md
            self.registry.gauge(metric, hau=hau_id).set(value)  # repro-lint: disable=TEL001

    def _preserve_bytes(self, hau_id: str) -> float:
        """Retained bytes attributable to this HAU, whichever discipline.

        Baseline input preservation: the HAU's bounded local buffer
        (memory + spilled disk).  Meteor Shower source preservation: the
        HAU's preserved tuples on shared storage (sources only).
        """
        scheme = self.runtime.scheme
        preserver = getattr(scheme, "preserver", None)
        if preserver is None:
            return 0.0
        stores = getattr(preserver, "_stores", None)
        if stores is not None:  # InputPreserver
            store = stores.get(hau_id)
            if store is None:
                return 0.0
            return float(store.mem_bytes + store.disk_bytes)
        storage = getattr(preserver, "storage", None)
        if storage is not None:  # SourcePreserver
            objects = storage._objects.get((_PRESERVE_NS, hau_id), ())
            return float(sum(obj.size for obj in objects))
        return 0.0

    # -- export ------------------------------------------------------------
    def series_dict(self) -> dict[str, dict[str, list[list[float]]]]:
        """JSON-ready form: metric -> hau -> [[t, value], ...] (sorted)."""
        return {
            metric: {
                hau_id: [[t, v] for (t, v) in points]
                for hau_id, points in sorted(per_hau.items())
            }
            for metric, per_hau in sorted(self.series.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sampler every {self.interval}s, {self.samples_taken} samples>"
