"""The metric registry: counters, gauges and streaming histograms.

A :class:`MetricRegistry` rides on the simulation
:class:`~repro.simulation.core.Environment` (``env.telemetry``) the same
way the tracer rides on ``env.trace``: the default is
:data:`NULL_REGISTRY`, whose ``enabled`` flag is False and whose factory
methods hand back a shared no-op metric — instrumented hot loops pay a
single attribute check when telemetry is off, and emission sites never
need ``if`` pyramids just to construct a metric handle.

Metrics are identified by ``(name, labels)``; labels are sorted
``(key, value)`` pairs so the identity (and every exported form) is
canonical.  Values are simulation-derived only, which makes the JSON
snapshot byte-identical across same-seed runs (the determinism contract
shared with :mod:`repro.observability`).

Naming convention (documented in DESIGN.md): ``ms_<subsystem>_<what>``
with a ``_total`` suffix for counters and a ``_seconds`` / ``_bytes``
unit suffix where applicable — directly exportable as Prometheus text.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.telemetry.quantile import P2Quantile

LabelPairs = tuple[tuple[str, str], ...]

DEFAULT_PERCENTILES = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing value (counts, bytes, seconds-of-work)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount!r})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (queue depth, state bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            "value": self.value,
        }


class Histogram:
    """A streaming distribution: count/sum/min/max plus P² percentiles.

    Keeps no sample buffer — each tracked percentile costs five markers
    (see :class:`~repro.telemetry.quantile.P2Quantile`), so per-tuple
    latency observation stays O(1) in both time and memory.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "_estimators")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    ):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0
        self._estimators = {p: P2Quantile(p) for p in percentiles}

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.sum += value
        for est in self._estimators.values():
            est.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        est = self._estimators.get(p)
        if est is None:
            raise KeyError(f"histogram {self.name} does not track p={p!r}")
        return est.value()

    def quantiles(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` (tracked set)."""
        return {
            f"p{round(p * 100):d}": est.value()
            for p, est in sorted(self._estimators.items())
        }

    def as_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        out.update(self.quantiles())
        return out


Metric = Counter | Gauge | Histogram


class _NullMetric:
    """Accepts every mutation and does nothing; reads as empty."""

    __slots__ = ()

    name = ""
    labels: LabelPairs = ()
    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def percentile(self, p: float) -> float:
        return 0.0

    def quantiles(self) -> dict[str, float]:
        return {}


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The default no-op registry: ``enabled`` is False, and every
    factory returns the shared do-nothing metric, so instrumentation can
    be installed unconditionally and guarded by one attribute check in
    the loops that matter."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: str) -> _NullMetric:
        return _NULL_METRIC

    def metrics(self) -> list[Metric]:
        return []

    def __iter__(self) -> Iterator[Metric]:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()


def _label_pairs(labels: dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricRegistry:
    """Holds every metric of one run, keyed by (name, sorted labels).

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same identity return the same object, so call sites do not
    need to cache handles for correctness (they may for speed).
    """

    enabled = True

    def __init__(self):
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs) -> Metric:
        key = (name, _label_pairs(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])!r} already registered "
                f"as {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        percentiles: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        if percentiles is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, percentiles=percentiles)

    # -- queries -----------------------------------------------------------
    def metrics(self) -> list[Metric]:
        """All metrics, sorted by (name, labels) for stable export."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Metric | None:
        """The metric if it exists — never creates (for tooling/tests)."""
        return self._metrics.get((name, _label_pairs(labels)))

    def select(self, prefix: str) -> list[Metric]:
        return [m for m in self.metrics() if m.name.startswith(prefix)]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricRegistry {len(self._metrics)} metrics>"


RegistryLike = Any  # MetricRegistry | NullRegistry — same factory surface


def ensure_registry(registry: RegistryLike | None) -> RegistryLike:
    """Coerce ``None`` to the shared no-op registry."""
    return NULL_REGISTRY if registry is None else registry
