"""Human-readable report of a telemetry snapshot.

``python -m repro.telemetry.report <snapshot.json>`` renders the
snapshot written by :func:`repro.telemetry.export.write_snapshot` (or
``ExperimentResult.write_telemetry``) as fixed-width tables: counters
and gauges, histogram distributions (count/mean/p50/p95/p99/max), and a
per-HAU digest of every sampled time series.
"""

from __future__ import annotations

import sys
from typing import Any


def _labels_str(labels: dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def render_snapshot(snap: dict[str, Any]) -> str:
    """The whole snapshot as a text report (tables + header)."""
    # deferred: repro.harness pulls in the experiment stack, which must
    # not load just because telemetry (a leaf dependency of it) does
    from repro.harness.report import format_table

    sections: list[str] = []
    meta = snap.get("meta") or {}
    if meta:
        head = "  ".join(f"{k}={meta[k]}" for k in sorted(meta))
        sections.append(f"telemetry snapshot: {head}")

    metrics = snap.get("metrics") or []
    scalars = [m for m in metrics if m.get("type") in ("counter", "gauge")]
    if scalars:
        rows = [
            [m["name"], m["type"], _labels_str(m.get("labels", {})), m["value"]]
            for m in scalars
        ]
        sections.append(
            format_table(["metric", "type", "labels", "value"], rows,
                         title="Counters and gauges")
        )

    histos = [m for m in metrics if m.get("type") == "histogram"]
    if histos:
        rows = [
            [
                m["name"],
                _labels_str(m.get("labels", {})),
                m["count"],
                m.get("mean", 0.0),
                m.get("p50", 0.0),
                m.get("p95", 0.0),
                m.get("p99", 0.0),
                m.get("max", 0.0),
            ]
            for m in histos
        ]
        sections.append(
            format_table(
                ["histogram", "labels", "count", "mean", "p50", "p95", "p99", "max"],
                rows,
                title="Distributions",
            )
        )

    series = snap.get("series") or {}
    for metric_name in sorted(series):
        per_hau = series[metric_name]
        rows = []
        for hau_id in sorted(per_hau):
            points = per_hau[hau_id]
            values = [v for (_t, v) in points]
            if not values:
                continue
            rows.append(
                [
                    hau_id,
                    len(values),
                    values[-1],
                    min(values),
                    max(values),
                    sum(values) / len(values),
                ]
            )
        if rows:
            sections.append(
                format_table(
                    ["hau", "samples", "last", "min", "max", "mean"],
                    rows,
                    title=f"Series: {metric_name}",
                )
            )
    if not sections:
        sections.append("telemetry snapshot: empty")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.telemetry.report <snapshot.json>",
              file=sys.stderr)
        return 2
    from repro.telemetry.export import read_snapshot

    try:
        snap = read_snapshot(argv[0])
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(render_snapshot(snap))
    except BrokenPipeError:
        # downstream consumer (e.g. `head`) closed the pipe early
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
