"""Telemetry exporters: deterministic JSON snapshot + Prometheus text.

The JSON snapshot carries every registry metric (canonical ordering:
sorted by name then labels) and, when a sampler is attached, the per-HAU
time series.  Every value is simulation-derived, keys are sorted and
floats rendered by ``repr`` — so two runs with the same seed produce
*byte-identical* snapshots (the same contract as the trace JSONL export,
and what CI's telemetry artifact relies on).

The Prometheus export renders the standard text exposition format
(counters and gauges verbatim; histograms as summaries with quantile
labels plus ``_sum``/``_count``), so a snapshot can be scraped or pushed
without any client library.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.registry import Histogram, RegistryLike

_JSON_KW = dict(sort_keys=True, indent=2, allow_nan=False)


def snapshot(
    registry: RegistryLike,
    sampler=None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold a registry (and optional sampler) into a JSON-ready dict."""
    snap: dict[str, Any] = {
        "meta": dict(meta or {}),
        "metrics": [m.as_dict() for m in registry.metrics()],
        "series": sampler.series_dict() if sampler is not None else {},
    }
    return snap


def dumps_snapshot(snap: dict[str, Any]) -> str:
    """Canonical JSON text for a snapshot (trailing newline included)."""
    return json.dumps(snap, **_JSON_KW) + "\n"


def write_snapshot(snap: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(dumps_snapshot(snap))


def read_snapshot(path: str) -> dict[str, Any]:
    """Parse a snapshot file back (for the report CLI and tests)."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


# -- Prometheus text exposition ------------------------------------------------


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote and newline (in that order, so the escapes themselves survive)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text escaping per the exposition format (no quote escaping)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


# ``# HELP`` docstrings for the metric families whose meaning is not
# obvious from the ``ms_<subsystem>_<what>`` name alone — today the
# monitoring plane's alert/window families (see repro.monitor).
HELP_TEXT = {
    "ms_alerts_fired_total": "SLO burn-rate alerts fired, by SLO kind",
    "ms_alerts_resolved_total": "SLO burn-rate alerts resolved, by SLO kind",
    "ms_alerts_active": "currently-firing SLO alerts",
    "ms_monitor_ticks_total": "monitoring-plane window evaluations",
    "ms_monitor_samples_total": "SLO samples folded into burn-rate windows",
}


def _label_str(labels: dict[str, str] | tuple, extra: dict[str, str] | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: RegistryLike) -> str:
    """The registry in Prometheus text format (one trailing newline).

    Histograms are exposed as summaries: ``name{quantile="0.5"}`` per
    tracked percentile, plus ``name_sum`` and ``name_count``.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def _header(name: str, kind: str) -> None:
        help_text = HELP_TEXT.get(name)
        if help_text is not None:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        typed.add(name)

    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            if metric.name not in typed:
                _header(metric.name, "summary")
            for key, value in sorted(metric.quantiles().items()):
                q = int(key[1:]) / 100.0
                lines.append(
                    f"{metric.name}{_label_str(metric.labels, {'quantile': repr(q)})}"
                    f" {_fmt_value(value)}"
                )
            lines.append(
                f"{metric.name}_sum{_label_str(metric.labels)} {_fmt_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_label_str(metric.labels)} {metric.count}"
            )
        else:
            if metric.name not in typed:
                _header(metric.name, metric.kind)
            lines.append(
                f"{metric.name}{_label_str(metric.labels)} {_fmt_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
