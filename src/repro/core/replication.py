"""Replication-based fault tolerance: the resource-cost comparison.

The paper dismisses replication-based schemes ([1,2,3]) because running
k+1 replicas of every operator "takes up substantial computational
resources, and [is] not economically viable for large-scale failures".
This module quantifies that argument for the ablation bench (A2): given
an application and a fault-tolerance target, how many nodes / how much
CPU does active replication cost versus checkpointing?

It is an analytical estimator (no replicated execution): replication's
common-case cost model is simple enough — k extra copies of every HAU's
CPU and network load plus input duplication to every replica — that a
closed form is more honest than a simulated one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ReplicationCost:
    k: int
    nodes_required: int
    cpu_copies: int
    extra_network_factor: float
    survives_rack_failure: bool

    def overhead_vs_single(self) -> float:
        """Fractional extra resource vs the unreplicated deployment."""
        return float(self.k)


class ReplicationEstimator:
    """k-fault-tolerant active replication cost for a given application."""

    def __init__(self, hau_count: int, racks: int = 4):
        if hau_count < 1:
            raise ValueError("hau_count must be >= 1")
        self.hau_count = hau_count
        self.racks = racks

    def cost(self, k: int) -> ReplicationCost:
        """Cost of tolerating ``k`` simultaneous failures via replication.

        Each of the k+1 replicas of an HAU must live on a distinct node
        (and, to survive rack failures, a distinct rack), so the footprint
        is (k+1) x HAUs.  Every input stream is duplicated to all
        replicas: network traffic scales by k+1 as well.
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        replicas = k + 1
        return ReplicationCost(
            k=k,
            nodes_required=self.hau_count * replicas,
            cpu_copies=self.hau_count * replicas,
            extra_network_factor=float(replicas),
            survives_rack_failure=replicas <= self.racks,
        )

    def checkpoint_footprint(self, spare_nodes: int) -> int:
        """Checkpointing's footprint: the working set plus a spare pool."""
        return self.hau_count + spare_nodes

    def break_even_k(self, spare_nodes: int) -> int:
        """Largest k for which replication is no more expensive than
        checkpointing with the given spare pool (usually 0)."""
        k = 0
        while self.cost(k + 1).nodes_required <= self.checkpoint_footprint(spare_nodes):
            k += 1
        return k
