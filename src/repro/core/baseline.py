"""The baseline: state-of-the-art checkpoint scheme circa 2012 (§II-B3).

"HAUs perform checkpoints independently.  Each HAU selects randomly the
time for its first checkpoint.  After that, each HAU checkpoints its
state periodically. ... Using input preservation, each HAU preserves
output tuples in an in-memory buffer [50 MB, spilling to local disk].
The checkpointed state is saved on a shared storage node.  An HAU sends
a message back to its upstream neighbors once it completes a checkpoint
[discarding acknowledged tuples]. ... HAUs perform checkpoints
synchronously."

Recovery is per-HAU (1-safe): the failed HAU restarts from its own MRC
on a spare node, upstream neighbours replay the retained tuples beyond
the acknowledged sequence, and per-edge sequence numbers suppress
duplicates downstream.  Correlated failures that also take out an
upstream neighbour lose the retained buffer — the data-loss mode that
motivates Meteor Shower (reported, not hidden).
"""

from __future__ import annotations


from repro.core.costs import CostModel
from repro.core.preservation import InputPreserver
from repro.dsps.graph import EdgeSpec
from repro.dsps.hau import HAURuntime
from repro.dsps.runtime import CheckpointScheme
from repro.dsps.tuples import DataTuple
from repro.metrics.breakdown import CheckpointBreakdown
from repro.simulation.core import Interrupt
from repro.storage.local import DEFAULT_BUFFER_BYTES
from repro.storage.shared import StorageClient

CKPT_NS = "ckpt"


class BaselineScheme(CheckpointScheme):
    name = "baseline"

    def __init__(
        self,
        checkpoint_period: float | None = None,
        costs: CostModel | None = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        enable_recovery: bool = False,
        start_after: float = 0.0,
    ):
        super().__init__()
        self.checkpoint_period = checkpoint_period
        self.costs = costs or CostModel()
        self.preserver = InputPreserver(buffer_bytes=buffer_bytes)
        self.enable_recovery = enable_recovery
        self.start_after = start_after
        self._pending: dict[str, int] = {}  # hau_id -> local round counter
        # upstream_hau_id -> [(edge, new_channel, after_seq)]: replay jobs
        # executed at the upstream's own tuple boundary, so the replayed
        # tuples enter the new channel strictly before any new emission.
        self._pending_replays: dict[str, list] = {}
        self.breakdowns: list[CheckpointBreakdown] = []
        self.checkpoint_versions: dict[str, int] = {}  # hau -> latest version
        self.unrecoverable: list[tuple[float, str]] = []
        self.recovered: list[tuple[float, str]] = []
        self._recovering = False

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        rt = self.runtime
        if self.checkpoint_period:
            for hau_id in sorted(rt.haus):
                rt.haus[hau_id].node.spawn(
                    self._timer(hau_id), label=f"baseline.timer.{hau_id}"
                )
        if self.enable_recovery:
            rt.dc.storage_node.spawn(self._watcher(), label="baseline.watch")

    def _timer(self, hau_id: str):
        """Random first phase, then strictly periodic requests."""
        env = self.runtime.env
        rng = self.runtime.rngs.stream(f"baseline.phase.{hau_id}")
        try:
            first = self.start_after + float(rng.uniform(0.0, self.checkpoint_period))
            yield env.timeout(max(0.0, first - env.now))
            counter = 0
            while True:
                counter += 1
                self._pending[hau_id] = counter
                hau = self.runtime.haus.get(hau_id)
                if hau is not None:
                    hau.request_safepoint()
                yield env.timeout(self.checkpoint_period)
        except Interrupt:
            return

    # -- hooks --------------------------------------------------------------------------
    def on_emit(self, hau: HAURuntime, edge: EdgeSpec, tup: DataTuple):
        """Input preservation: copy the tuple into the retention buffer,
        spilling to the local disk when the 50 MB buffer fills."""
        cost = self.costs.memcpy_time(tup.size)
        if cost > 0:
            yield self.runtime.env.timeout(cost)
        yield from self.preserver.retain(hau, edge.edge_id, tup)

    def processing_overhead(self, hau: HAURuntime) -> float:
        """The standing cost of input preservation on the processing path.

        Every non-sink HAU serialises, buffers and bookkeeps each tuple's
        outputs; calibrated as a fraction of processing cost (see
        CostModel.input_preservation_factor and EXPERIMENTS.md)."""
        return 0.0 if hau.is_sink else self.costs.input_preservation_factor

    def maybe_checkpoint(self, hau: HAURuntime):
        # Replay jobs first: performed inside the upstream's own loop so no
        # new emission can overtake the replayed (lower-seq) tuples.
        jobs = self._pending_replays.pop(hau.hau_id, None)
        if jobs:
            for edge, chan, after_seq in jobs:
                tuples = yield from self.preserver.replay(
                    hau.hau_id, edge.edge_id, after_seq
                )
                for tup in tuples:
                    yield chan.send(tup, size=tup.size)
                hau.attach_out_channel(edge, chan)
        counter = self._pending.pop(hau.hau_id, None)
        if counter is not None:
            yield from self._sync_checkpoint(hau, counter)

    # -- the synchronous independent checkpoint ------------------------------------------------
    def _sync_checkpoint(self, hau: HAURuntime, counter: int):
        env = self.runtime.env
        bd = CheckpointBreakdown(hau_id=hau.hau_id, round_id=counter)
        bd.command_at = bd.tokens_done_at = env.now  # no tokens to collect
        if env.trace.enabled:
            env.trace.emit(
                "checkpoint.start",
                t=env.now,
                subject=hau.hau_id,
                round=counter,
                mode="sync",
                scheme=self.name,
            )
        hau.pause_intake()
        try:
            payload = hau.build_checkpoint_payload(counter, include_backlog=False)
            ser = self.costs.serialize_time(payload["state_size"])
            bd.serialize_seconds = ser
            if ser > 0:
                yield env.timeout(ser)
            bd.state_bytes = payload["state_size"]
            bd.write_start_at = env.now
            if env.trace.enabled:
                env.trace.emit(
                    "checkpoint.write.start",
                    t=env.now,
                    subject=hau.hau_id,
                    round=counter,
                    bytes=payload["state_size"],
                )
            client = StorageClient(hau.node, self.runtime.storage)
            version = yield from client.write(
                CKPT_NS, hau.hau_id, payload, size=max(payload["state_size"], 1), bulk=True
            )
            bd.write_end_at = env.now
            if env.telemetry.enabled:
                env.telemetry.histogram(
                    "ms_checkpoint_write_seconds", scheme=self.name
                ).observe(bd.write_end_at - bd.write_start_at)
                env.telemetry.counter(
                    "ms_checkpoint_bytes_total", scheme=self.name
                ).inc(payload["state_size"])
                env.telemetry.gauge(
                    "ms_hau_ckpt_write_seconds", hau=hau.hau_id
                ).set(bd.write_end_at - bd.write_start_at)
            if env.trace.enabled:
                env.trace.emit(
                    "checkpoint.commit",
                    t=env.now,
                    subject=hau.hau_id,
                    round=counter,
                    bytes=payload["state_size"],
                    version=version,
                    scheme=self.name,
                )
            self.checkpoint_versions[hau.hau_id] = version
            self.breakdowns.append(bd)
            # GC our own superseded checkpoints, then ack upstream: the
            # retained tuples we have checkpointed past can be discarded.
            self.runtime.storage.drop_versions_before(CKPT_NS, hau.hau_id, version)
            self._ack_upstream(hau, payload["in_seq"])
        finally:
            hau.resume_intake()

    def _ack_upstream(self, hau: HAURuntime, in_seq: dict[int, int]) -> None:
        for edge_idx, edge in enumerate(hau.in_edges):
            seq = in_seq.get(edge_idx, 0)
            if seq:
                self.preserver.ack(edge.src, seq)

    # -- recovery (1-safe) -----------------------------------------------------------------
    def _watcher(self):
        env = self.runtime.env
        try:
            while True:
                yield env.timeout(self.costs.ping_interval)
                dead = sorted(
                    hau_id
                    for hau_id, hau in self.runtime.haus.items()
                    if not hau.node.alive
                )
                if dead and not self._recovering:
                    self._recovering = True
                    if env.trace.enabled:
                        env.trace.emit(
                            "failure.detected",
                            t=env.now,
                            subject=self.name,
                            dead=",".join(dead),
                        )
                    # Classify the whole sweep first: a victim whose upstream
                    # is also in the sweep has lost that upstream's retained
                    # buffer no matter the recovery order.
                    dead_set = set(dead)
                    recoverable = []
                    for hau_id in dead:
                        ups = self.runtime.app.graph.upstream(hau_id)
                        if any(u in dead_set for u in ups):
                            self.unrecoverable.append((env.now, hau_id))
                            if env.trace.enabled:
                                env.trace.emit(
                                    "baseline.unrecoverable",
                                    t=env.now,
                                    subject=hau_id,
                                    cause="upstream-dead",
                                )
                            self.runtime.metrics.record_event(
                                env.now, "baseline-unrecoverable", hau_id
                            )
                            if env.telemetry.enabled:
                                env.telemetry.counter(
                                    "ms_baseline_unrecoverable_total",
                                    cause="upstream-dead",
                                ).inc()
                        else:
                            recoverable.append(hau_id)
                    for hau_id in recoverable:
                        yield from self._recover_single(hau_id)
                    self._recovering = False
        except Interrupt:
            return

    def _recover_single(self, hau_id: str):
        """Restart one failed HAU from its MRC; upstreams replay.

        If an upstream neighbour's retained buffer is gone — the neighbour
        is dead, or it died and was itself restarted with an empty buffer
        (correlated failure) — the tuples are unrecoverable and the event
        is recorded.  This is the baseline's 1-safety limit.
        """
        rt = self.runtime
        env = rt.env
        graph = rt.app.graph
        if env.trace.enabled:
            env.trace.emit(
                "baseline.recover.start", t=env.now, subject=hau_id
            )
        for up in graph.upstream(hau_id):
            up_store = self.preserver._stores.get(up)
            up_node_dead = not rt.haus[up].node.alive
            store_lost = up_store is not None and not up_store.node.alive
            if up_node_dead or store_lost:
                self.unrecoverable.append((env.now, hau_id))
                if env.trace.enabled:
                    env.trace.emit(
                        "baseline.unrecoverable",
                        t=env.now,
                        subject=hau_id,
                        cause="retained-buffer-lost",
                    )
                rt.metrics.record_event(env.now, "baseline-unrecoverable", hau_id)
                if env.telemetry.enabled:
                    env.telemetry.counter(
                        "ms_baseline_unrecoverable_total",
                        cause="retained-buffer-lost",
                    ).inc()
                return
        spare = rt.dc.claim_spare()
        yield env.timeout(self.costs.reload_seconds)
        payload = None
        version = self.checkpoint_versions.get(hau_id)
        if version is not None:
            client = StorageClient(spare, rt.storage)
            obj = yield from client.read(CKPT_NS, hau_id, version=version, bulk=True)
            payload = obj.value
            yield env.timeout(self.costs.deserialize_time(obj.size))
        restored_in_seq = dict(payload.get("in_seq", {})) if payload else {}
        hau, deferred = rt.rebuild_single_hau(
            hau_id, spare, payload, attach_upstream=False
        )
        yield env.timeout(self.costs.reconnect_per_hau)
        hau.start()
        # Queue the upstream replays: each upstream re-sends its retained
        # tuples into the fresh channel at its next tuple boundary, then
        # attaches the channel for live traffic.
        for edge, chan in deferred:
            edge_idx = hau.in_edges.index(edge)
            after = restored_in_seq.get(edge_idx, 0)
            self._pending_replays.setdefault(edge.src, []).append((edge, chan, after))
            up = rt.haus.get(edge.src)
            if up is not None:
                up.request_safepoint()
        self.recovered.append((env.now, hau_id))
        if env.trace.enabled:
            env.trace.emit(
                "baseline.recover.done",
                t=env.now,
                subject=hau_id,
                node=spare.node_id,
                replay_edges=len(deferred),
            )
        rt.metrics.record_event(env.now, "baseline-recovered", hau_id)
        if env.telemetry.enabled:
            env.telemetry.counter("ms_baseline_recovered_total").inc()
