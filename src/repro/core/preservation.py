"""Tuple preservation: the paper's two retention disciplines.

*Source preservation* (§III-A, all Meteor Shower variants): only source
HAUs retain output tuples, saving them to stable (shared) storage
*before* sending — "which guarantees that the preserved tuples are still
accessible even if the source HAU fails".

*Input preservation* (baseline, [1]): every HAU retains every output
tuple in a bounded memory buffer that spills to local disk; downstream
checkpoint acknowledgements discard the retained prefix.  For a chain of
n operators every tuple is saved n-1 times — the overhead Meteor Shower
eliminates.
"""

from __future__ import annotations


from repro.cluster.node import Node
from repro.dsps.hau import HAURuntime
from repro.dsps.tuples import DataTuple
from repro.storage.local import DEFAULT_BUFFER_BYTES, LocalStore
from repro.storage.shared import SharedStorage, StorageClient

PRESERVE_NS = "preserve"


class SourcePreserver:
    """Stable-storage retention of source output (per source HAU)."""

    def __init__(self, storage: SharedStorage):
        self.storage = storage
        self.tuples_preserved = 0
        self.bytes_preserved = 0

    def preserve(self, hau: HAURuntime, tup: DataTuple):
        """Process generator: write ``tup`` to stable storage before send."""
        client = StorageClient(hau.node, self.storage)
        yield from client.write(PRESERVE_NS, hau.hau_id, tup, size=tup.size)
        self.tuples_preserved += 1
        self.bytes_preserved += tup.size

    def replay_tuples(self, hau_id: str, after_seq: int) -> list[DataTuple]:
        """Preserved tuples with seq > ``after_seq``, in order (metadata)."""
        out: list[DataTuple] = []
        versions = self.storage._objects.get((PRESERVE_NS, hau_id), [])
        for obj in versions:
            tup = obj.value
            if isinstance(tup, DataTuple) and tup.seq > after_seq:
                out.append(tup)
        return sorted(out, key=lambda t: t.seq)

    def replay_bytes(self, hau_id: str, after_seq: int) -> int:
        return sum(t.size for t in self.replay_tuples(hau_id, after_seq))

    def discard_through(self, hau_id: str, seq: int) -> None:
        """Garbage-collect preserved tuples covered by a completed round."""
        pair = (PRESERVE_NS, hau_id)
        versions = self.storage._objects.get(pair)
        if versions:
            self.storage._objects[pair] = [
                o
                for o in versions
                if not (isinstance(o.value, DataTuple) and o.value.seq <= seq)
            ]


class InputPreserver:
    """Per-HAU bounded-buffer output retention (baseline discipline)."""

    def __init__(self, buffer_bytes: int = DEFAULT_BUFFER_BYTES):
        self.buffer_bytes = buffer_bytes
        self._stores: dict[str, LocalStore] = {}
        self._nodes: dict[str, Node] = {}

    def store_for(self, hau: HAURuntime) -> LocalStore:
        """The HAU's retention store (recreated if the HAU moved nodes)."""
        store = self._stores.get(hau.hau_id)
        if store is None or self._nodes.get(hau.hau_id) is not hau.node:
            store = LocalStore(hau.node, buffer_bytes=self.buffer_bytes)
            self._stores[hau.hau_id] = store
            self._nodes[hau.hau_id] = hau.node
        return store

    def retain(self, hau: HAURuntime, edge_id: str, tup: DataTuple):
        """Process generator: retain an emitted tuple (may spill to disk)."""
        store = self.store_for(hau)
        yield from store.append(tup.seq, (edge_id, tup), tup.size)

    def ack(self, upstream_hau_id: str, seq: int) -> int:
        """Downstream checkpoint ack: discard retained tuples <= seq."""
        store = self._stores.get(upstream_hau_id)
        if store is None:
            return 0
        return store.discard_through(seq)

    def replay(self, upstream_hau_id: str, edge_id: str, after_seq: int):
        """Process generator returning retained tuples for one edge."""
        store = self._stores.get(upstream_hau_id)
        if store is None:
            return []
        items = yield from store.replay_after(after_seq)
        return [tup for (_s, (eid, tup), _z) in items if eid == edge_id]

    def total_retained_bytes(self) -> int:
        return sum(s.mem_bytes + s.disk_bytes for s in self._stores.values())
