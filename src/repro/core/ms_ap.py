"""MS-src+ap: parallel, asynchronous Meteor Shower (§III-B).

Parallel: the controller broadcasts a token command to *every* HAU at
once.  Each HAU immediately inserts a 1-hop token at the head of each
output queue and then waits for 1-hop tokens from its upstream
neighbours; tokens are discarded after the individual checkpoint starts
(never forwarded).

Asynchronous: when tokens have arrived on all input edges, the HAU forks
a child process (copy-on-write) at the next tuple boundary; the parent
resumes immediately while the child serialises and writes the state —
contending for the node's NIC and the storage node's disk, but off the
critical path.  While a child is live the parent pays a small COW tax on
processing.

Saved with the state: all tuples "between the incoming tokens and the
output tokens" — the output-queue content at command time (which the
head-inserted token jumped over), every tuple emitted between command
and fork, and the received-but-unprocessed pre-token input backlog.
"""

from __future__ import annotations


from repro.core.base import MeteorShowerBase, RoundState
from repro.core.delta import DeltaPolicy, DeltaTracker
from repro.dsps.graph import EdgeSpec
from repro.dsps.hau import HAURuntime
from repro.dsps.tuples import DataTuple, Token
from repro.simulation.core import Interrupt


class MSSrcAP(MeteorShowerBase):
    name = "ms-src+ap"

    def __init__(self, *args, delta: DeltaPolicy | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._cow_active: dict[str, int] = {}  # hau_id -> live child count
        self.delta = DeltaTracker(delta) if delta is not None else None

    # -- round initiation -----------------------------------------------------------
    def initiate_round(self):
        round_id = self.next_round_id()
        self.log_for(round_id)
        self.runtime.broadcast_control(("token_cmd", round_id))
        return
        yield  # pragma: no cover

    def on_control(self, hau: HAURuntime, message):
        if not (isinstance(message, tuple) and message[0] == "token_cmd"):
            return
        round_id = message[1]
        env = self.runtime.env
        st = self.round_state(hau.hau_id, round_id)
        st.command_at = env.now
        if env.trace.enabled:
            env.trace.emit(
                "checkpoint.command",
                t=env.now,
                subject=hau.hau_id,
                round=round_id,
                via="control",
            )
        # Tuples already queued in the output buffers become post-token
        # once the 1-hop token is inserted at the head: save copies.
        st.out_copies = hau.outbox_tuples()
        st.recording = True
        hau.emit_token_front(Token(round_id=round_id, origin=hau.hau_id, kind="one_hop"))
        if not hau.in_edges:
            # Sources (no upstream neighbours) are immediately ready.
            st.ready = True
            st.tokens_done_at = env.now
            if env.trace.enabled:
                env.trace.emit(
                    "checkpoint.tokens.done",
                    t=env.now,
                    subject=hau.hau_id,
                    round=round_id,
                    edges=0,
                )
        return
        yield  # pragma: no cover

    # -- token plumbing -------------------------------------------------------------------
    def on_token_arrival(self, hau: HAURuntime, edge_idx: int, token: Token) -> None:
        st = self.round_state(hau.hau_id, token.round_id)
        st.arrivals.add(edge_idx)
        if len(st.arrivals) == len(hau.in_edges) and not st.ready:
            st.ready = True
            env = self.runtime.env
            st.tokens_done_at = env.now
            if env.trace.enabled:
                env.trace.emit(
                    "checkpoint.tokens.done",
                    t=env.now,
                    subject=hau.hau_id,
                    round=token.round_id,
                    edges=len(st.arrivals),
                )

    def handle_token(self, hau: HAURuntime, edge_idx: int, token: Token):
        """Popped from the inbox: erase; block the edge until the snapshot."""
        st = self.round_state(hau.hau_id, token.round_id)
        st.processed.add(edge_idx)
        if not st.snapshot_done:
            hau.block_edge(edge_idx)
            if st.ready:
                yield from self._begin_async_checkpoint(hau, st)

    def on_emit(self, hau: HAURuntime, edge: EdgeSpec, tup: DataTuple):
        st = self.active_state(hau.hau_id)
        if st is not None and st.recording:
            st.out_copies.append((edge.edge_id, tup))
        return
        yield  # pragma: no cover

    def maybe_checkpoint(self, hau: HAURuntime):
        st = self.active_state(hau.hau_id)
        if st is not None and st.ready and not st.snapshot_done:
            yield from self._begin_async_checkpoint(hau, st)

    # -- the asynchronous individual checkpoint ------------------------------------------------
    def _begin_async_checkpoint(self, hau: HAURuntime, st: RoundState):
        """Fork (brief pause), snapshot, hand off to a background writer."""
        env = self.runtime.env
        st.snapshot_done = True
        st.recording = False
        bd = self.log_for(st.round_id).breakdown(hau.hau_id)
        bd.command_at = st.command_at or env.now
        bd.tokens_done_at = st.tokens_done_at or env.now
        if env.trace.enabled:
            env.trace.emit(
                "checkpoint.start",
                t=env.now,
                subject=hau.hau_id,
                round=st.round_id,
                mode="async",
                scheme=self.name,
                saved_out=len(st.out_copies),
            )
        self.record_source_marker(st.round_id, hau)
        # fork(): the parent is blocked while the child's page tables are set
        # up; the memory image is frozen (copy-on-write) at this instant.
        fork = self.costs.fork_time(hau.state_size())
        bd.fork_seconds = fork
        if env.telemetry.enabled:
            env.telemetry.histogram("ms_fork_seconds", scheme=self.name).observe(fork)
            env.telemetry.counter(
                "ms_async_checkpoints_total", scheme=self.name
            ).inc()
        yield env.timeout(fork)
        payload = hau.build_checkpoint_payload(st.round_id, extra_out=st.out_copies)
        # Tokens in the input buffers "are erased immediately" and held-back
        # tuples flow again; the parent has returned to normal execution.
        drained = hau.unblock_all_edges()
        if drained and env.telemetry.enabled:
            env.telemetry.counter(
                "ms_holdback_drained_total", hau=hau.hau_id
            ).inc(len(drained))
        self._cow_active[hau.hau_id] = self._cow_active.get(hau.hau_id, 0) + 1
        hau.node.spawn(
            self._child_writer(hau, payload, bd), label=f"{hau.hau_id}.ckpt{st.round_id}"
        )
        for e, item in drained:
            yield from hau._process_tuple(e, item)

    def _child_writer(self, hau: HAURuntime, payload: dict, bd):
        """The forked child: serialise and save state off the critical path."""
        env = self.runtime.env
        try:
            billed = payload["state_size"]
            is_full = True
            if self.delta is not None:
                billed, is_full = self.delta.billed_size(
                    hau.hau_id, payload["state_size"]
                )
            ser = self.costs.serialize_time(billed)
            bd.serialize_seconds = ser
            if ser > 0:
                yield env.timeout(ser)
            version = yield from self.write_checkpoint(
                hau, payload, bd, billed_size=billed
            )
            if self.delta is not None:
                self.delta.record(
                    hau.hau_id, payload["round_id"], version,
                    payload["state_size"], billed, is_full,
                )
        except Interrupt:
            return
        finally:
            self._cow_active[hau.hau_id] = max(0, self._cow_active.get(hau.hau_id, 1) - 1)

    def processing_overhead(self, hau: HAURuntime) -> float:
        return self.costs.cow_tax if self._cow_active.get(hau.hau_id, 0) > 0 else 0.0

    def on_recovery_reset(self) -> None:
        super().on_recovery_reset()
        self._cow_active.clear()
        if self.delta is not None:
            # every HAU's state was rolled back: the next round must be a
            # full checkpoint (chains written before the failure may carry
            # rounds the rollback discarded)
            for st in self.delta._hau.values():
                st.rounds_since_full = -1

    # -- delta-checkpointing hooks (repro.core.delta) --------------------------------
    def recovery_read_plan(self, hau_id: str, cut_round: int, cut_version: int) -> list[int]:
        if self.delta is not None:
            chain = self.delta.read_chain(hau_id, through_round=cut_round)
            versions = [v for (_r, v, _b) in chain]
            if versions and versions[-1] == cut_version:
                return versions
        return [cut_version]

    def _garbage_collect(self, completed_round: int) -> None:
        if self.delta is None:
            super()._garbage_collect(completed_round)
            return
        # keep every version in each HAU's live chain (the full checkpoint
        # plus its deltas); everything older is superseded
        storage = self.runtime.storage
        for hau_id in self.completed_rounds[completed_round]:
            protected = self.delta.protected_versions(hau_id)
            if protected:
                storage.drop_versions_before("ckpt", hau_id, min(protected))
        for src in self.runtime.app.graph.sources():
            marker = self.source_markers.get((completed_round, src))
            if marker is not None:
                self.preserver.discard_through(src, marker)


class OracleScheme(MSSrcAP):
    """MS-src+ap checkpointing exactly at the true state-size minima.

    The paper's Oracle: "the checkpoint is performed exactly at the moment
    of the minimal state ... obtained from observing prior runs".  The
    harness measures a prior run, computes the per-period minima instants,
    and passes them as ``checkpoint_times``.
    """

    name = "oracle"
