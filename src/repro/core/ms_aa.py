"""MS-src+ap+aa: application-aware Meteor Shower (§III-C).

Adds checkpoint *timing* intelligence on top of MS-src+ap:

1. **Profiling** — for ``profile_duration`` seconds every HAU's
   ``state_size()`` is sampled; HAUs whose minimum is below half their
   average are *dynamic*; the per-period minima of the aggregated dynamic
   state derive ``smax`` (relaxation-bounded, §III-C2).
2. **Alert mode** — per checkpoint period, the controller queries the
   dynamic HAUs (at the period start, and whenever one reports a
   more-than-half drop at a turning point); if the total is below
   ``smax`` the system enters alert mode.
3. **Trigger** — in alert mode dynamic HAUs actively report turning
   points with their instantaneous change rates; when the aggregated ICR
   turns positive the controller "foresees a state size increase" and
   initiates the checkpoint round immediately.  If alert mode never
   fires, the checkpoint happens at the period end anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ms_ap import MSSrcAP
from repro.simulation.core import AnyOf, Interrupt
from repro.simulation.resources import Store
from repro.state.profile import ProfileResult, StateProfile
from repro.state.turning import TurningPointDetector

DEFAULT_SAMPLE_INTERVAL = 1.0
HALF_DROP = 0.5


@dataclass(frozen=True)
class TurningReport:
    """A dynamic HAU's turning-point report to the controller."""

    hau_id: str
    time: float
    size: float
    icr: float
    kind: str  # "min" | "max"


class MSSrcAPAA(MSSrcAP):
    name = "ms-src+ap+aa"

    def __init__(
        self,
        checkpoint_period: float,
        profile_duration: float = 60.0,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        max_rounds: int | None = None,
        min_dynamic_bytes: float = 1_000_000.0,
        profile_startup_skip: float = 0.25,
        **kwargs,
    ):
        super().__init__(checkpoint_times=None, **kwargs)
        self.checkpoint_period = float(checkpoint_period)
        self.profile_duration = float(profile_duration)
        self.sample_interval = float(sample_interval)
        self.max_rounds = max_rounds
        self.min_dynamic_bytes = float(min_dynamic_bytes)
        self.profile_startup_skip = float(profile_startup_skip)
        self.profile_result: ProfileResult | None = None
        self.dynamic_haus: list[str] = []
        self._reports: Store | None = None
        self._last_icr: dict[str, float] = {}
        self._last_max: dict[str, float] = {}
        # controller's view per HAU: (report time, size at that time).
        # Totals are linearly extrapolated with the last known ICR — the
        # paper's piecewise-linear reconstruction from turning points.
        self._last_size: dict[str, tuple[float, float]] = {}
        self.decisions: list[tuple[float, str]] = []  # (time, reason) per round

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        super().start()  # failure watcher (no coordinator: no checkpoint_times)
        rt = self.runtime
        self._reports = Store(rt.env)
        rt.dc.storage_node.spawn(self._aa_controller(), label="aa.controller")

    # -- controller-side protocol ---------------------------------------------------------
    def _query_total_size(self):
        """Query each dynamic HAU's state size (one control RTT each,
        issued in parallel — bill a single RTT) and cache the answers."""
        env = self.runtime.env
        yield env.timeout(self.costs.control_rtt)
        for hau_id in self.dynamic_haus:
            hau = self.runtime.haus.get(hau_id)
            if hau is not None and hau.node.alive:
                self._last_size[hau_id] = (env.now, float(hau.state_size()))
        return self._known_total()

    def _known_total(self) -> float:
        """The controller's reconstructed total dynamic state size.

        §III-C2: sizes between turning points are "roughly recovered by
        linear interpolation", so each HAU's last report is extrapolated
        forward with its last known ICR (clamped at zero)."""
        now = self.runtime.env.now
        total = 0.0
        for h in self.dynamic_haus:
            t, size = self._last_size.get(h, (now, 0.0))
            icr = self._last_icr.get(h, 0.0)
            total += max(0.0, size + icr * (now - t))
        return total

    def _aa_controller(self):
        env = self.runtime.env
        try:
            # ---- profiling phase -------------------------------------------------
            profile = StateProfile(
                checkpoint_period=self.checkpoint_period,
                min_dynamic_bytes=self.min_dynamic_bytes,
                startup_skip=self.profile_startup_skip,
            )
            t_end = env.now + self.profile_duration
            while env.now < t_end:
                yield env.timeout(self.sample_interval)
                for hau_id, hau in self.runtime.haus.items():
                    if hau.node.alive:
                        profile.observe(hau_id, env.now, float(hau.state_size()))
            self.profile_result = profile.result()
            self.dynamic_haus = list(self.profile_result.dynamic_haus)
            if env.telemetry.enabled:
                env.telemetry.gauge("ms_aa_smax_bytes").set(
                    float(self.profile_result.smax)
                )
                env.telemetry.gauge("ms_aa_dynamic_haus").set(
                    float(len(self.dynamic_haus))
                )
            if env.trace.enabled:
                env.trace.emit(
                    "aa.profile",
                    t=env.now,
                    subject=self.name,
                    dynamic=",".join(sorted(self.dynamic_haus)),
                    smax=float(self.profile_result.smax),
                )
            for hau_id in self.dynamic_haus:
                hau = self.runtime.haus.get(hau_id)
                if hau is not None and hau.node.alive:
                    hau.node.spawn(
                        self._sampler(hau_id), label=f"aa.sampler.{hau_id}"
                    )
            # ---- execution: one checkpoint per period ---------------------------------
            rounds = 0
            while self.max_rounds is None or rounds < self.max_rounds:
                deadline = env.now + self.checkpoint_period
                yield from self._run_period(deadline)
                rounds += 1
                if env.now < deadline:
                    yield env.timeout(deadline - env.now)
        except Interrupt:
            return

    def _run_period(self, deadline: float):
        """Wait for the best checkpoint instant within one period."""
        env = self.runtime.env
        smax = self.profile_result.smax if self.profile_result else 0.0
        alert = False
        if self.dynamic_haus and smax > 0:
            total = yield from self._query_total_size()
            alert = total < smax
            if alert and env.trace.enabled:
                env.trace.emit(
                    "aa.alert.enter",
                    t=env.now,
                    subject=self.name,
                    total=float(total),
                    smax=float(smax),
                    via="query",
                )
        while env.now < deadline:
            if not self.dynamic_haus or smax <= 0:
                break  # nothing to be aware of: fall through to period end
            report = yield from self._next_report(deadline)
            if report is None:
                break  # period expired
            yield env.timeout(self.costs.control_rtt / 2)  # report latency
            self._last_icr[report.hau_id] = report.icr
            self._last_size[report.hau_id] = (report.time, report.size)
            if env.telemetry.enabled:
                env.telemetry.counter(
                    "ms_aa_turning_points_total", hau=report.hau_id
                ).inc()
            if env.trace.enabled:
                env.trace.emit(
                    "aa.turning_point",
                    t=env.now,
                    subject=report.hau_id,
                    at=report.time,
                    size=float(report.size),
                    icr=float(report.icr),
                    turn=report.kind,
                )
            if not alert:
                # A more-than-half drop at a turning point triggers the
                # controller to check the total state size *at that point*
                # (rebuilt from reports — Fig. 11's p4, not a re-query).
                prev_max = self._last_max.get(report.hau_id, 0.0)
                if report.kind == "max":
                    self._last_max[report.hau_id] = report.size
                elif prev_max > 0 and report.size < HALF_DROP * prev_max:
                    alert = self._known_total() < smax
                    if alert and env.trace.enabled:
                        env.trace.emit(
                            "aa.alert.enter",
                            t=env.now,
                            subject=self.name,
                            total=float(self._known_total()),
                            smax=float(smax),
                            via="half-drop",
                        )
            if alert:
                aggregate = sum(self._last_icr.get(h, 0.0) for h in self.dynamic_haus)
                if aggregate > 0:
                    # "Once the controller foresees a state size increase in
                    # alert mode, it initiates a checkpoint."
                    self.decisions.append((env.now, "icr"))
                    if env.telemetry.enabled:
                        env.telemetry.counter(
                            "ms_aa_decisions_total", reason="icr"
                        ).inc()
                    if env.trace.enabled:
                        env.trace.emit(
                            "aa.decision",
                            t=env.now,
                            subject=self.name,
                            reason="icr",
                            aggregate_icr=float(aggregate),
                        )
                    yield from self.initiate_round()
                    return
        # "In the rare case where the total state size is never below smax
        # during a period, a checkpoint will be performed anyway."
        if env.now < deadline:
            yield env.timeout(deadline - env.now)
        self.decisions.append((env.now, "deadline"))
        if env.telemetry.enabled:
            env.telemetry.counter("ms_aa_decisions_total", reason="deadline").inc()
        if env.trace.enabled:
            env.trace.emit(
                "aa.decision", t=env.now, subject=self.name, reason="deadline"
            )
        yield from self.initiate_round()

    def _next_report(self, deadline: float):
        """Next turning-point report, or None at the deadline."""
        env = self.runtime.env
        get_ev = self._reports.get()
        timer = env.timeout(max(0.0, deadline - env.now))
        yield AnyOf(env, [get_ev, timer])
        if get_ev.triggered:
            report = yield get_ev
            return report
        get_ev.cancel()
        return None

    # -- HAU-side sampling -----------------------------------------------------------------
    def _sampler(self, hau_id: str):
        """Dynamic-HAU process: sample state size, report turning points."""
        env = self.runtime.env
        detector = TurningPointDetector()
        try:
            while True:
                yield env.timeout(self.sample_interval)
                hau = self.runtime.haus.get(hau_id)
                if hau is None or not hau.node.alive:
                    return
                tp = detector.observe(env.now, float(hau.state_size()))
                if tp is not None and self._reports is not None:
                    self._reports.put(
                        TurningReport(
                            hau_id=hau_id,
                            time=tp.time,
                            size=tp.size,
                            icr=tp.icr,
                            kind=tp.kind,
                        )
                    )
        except Interrupt:
            return
