"""Delta-checkpointing extension (paper §V, related work).

"Cooperative HA Solution [4] ... also experiments with delta-
checkpointing (saving only the changed part of the state) to reduce the
state size.  We believe that distributed checkpointing and delta-
checkpointing complement Meteor Shower's application-aware
checkpointing and could be applied jointly."

This module implements that composition for the asynchronous variants:
between periodic *full* checkpoints, a round ships only the state grown
since the previous round (the dominant state of all three paper
applications is append-shaped: pools, retained frames, histories).  A
shrink (batch flush, bus arrival, vehicle departure) rewrites from
scratch — which is exactly when the state is smallest, so the rewrite is
cheap.

The trade-off it buys and the one it costs:

* common case: less data serialised and shipped per round;
* recovery: the restart must read the whole chain — the last full
  checkpoint plus every delta after it — so worst-case recovery reads
  more than one object (bench A4 quantifies both sides).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeltaPolicy:
    """Controls delta-checkpointing for a Meteor Shower scheme.

    ``full_every`` — every k-th round per HAU is a full checkpoint
    (k=1 disables deltas in effect).  ``min_delta_bytes`` — a floor for
    billed delta size (metadata, dirty-page table).
    """

    full_every: int = 4
    min_delta_bytes: int = 4096

    def __post_init__(self):
        if self.full_every < 1:
            raise ValueError("full_every must be >= 1")


@dataclass
class _HauDeltaState:
    rounds_since_full: int = -1  # -1: never checkpointed
    last_size: int = 0
    #: versions forming the current chain: [(round_id, version, billed)]
    chain: list[tuple[int, int, int]] = field(default_factory=list)


class DeltaTracker:
    """Per-HAU bookkeeping shared by the delta-enabled schemes."""

    def __init__(self, policy: DeltaPolicy):
        self.policy = policy
        self._hau: dict[str, _HauDeltaState] = {}

    def _state(self, hau_id: str) -> _HauDeltaState:
        st = self._hau.get(hau_id)
        if st is None:
            st = _HauDeltaState()
            self._hau[hau_id] = st
        return st

    def billed_size(self, hau_id: str, full_size: int) -> tuple[int, bool]:
        """(bytes to ship for this round, is_full).

        A round is full when the cadence says so, when the state shrank
        (append-structure reset: rewrite the now-small state), or when no
        checkpoint exists yet.
        """
        st = self._state(hau_id)
        due_full = (
            st.rounds_since_full < 0
            or (st.rounds_since_full + 1) >= self.policy.full_every
        )
        shrunk = full_size < st.last_size
        if due_full or shrunk:
            return max(full_size, 1), True
        delta = max(full_size - st.last_size, self.policy.min_delta_bytes)
        return delta, False

    def record(self, hau_id: str, round_id: int, version: int,
               full_size: int, billed: int, is_full: bool) -> None:
        st = self._state(hau_id)
        if is_full:
            st.chain = [(round_id, version, billed)]
            st.rounds_since_full = 0
        else:
            st.chain.append((round_id, version, billed))
            st.rounds_since_full += 1
        st.last_size = full_size

    def read_chain(self, hau_id: str, through_round: int) -> list[tuple[int, int, int]]:
        """The (round, version, billed) objects a recovery must read to
        reconstruct the state as of ``through_round``."""
        st = self._hau.get(hau_id)
        if st is None:
            return []
        return [c for c in st.chain if c[0] <= through_round]

    def protected_versions(self, hau_id: str) -> set[int]:
        """Versions the garbage collector must keep (the live chain)."""
        st = self._hau.get(hau_id)
        return {v for (_r, v, _b) in st.chain} if st else set()

    def chain_read_bytes(self, hau_id: str, through_round: int) -> int:
        return sum(b for (_r, _v, b) in self.read_chain(hau_id, through_round))
