"""Global-rollback recovery for Meteor Shower (§III-A, §IV-C).

When any failure is detected, *all* HAUs are restored to the Most Recent
(complete) application Checkpoint: HAUs on dead nodes restart on healthy
spares; every HAU reloads its operators (phase 1), reads its individual
checkpoint from shared storage (phase 2 — the dominant disk I/O),
deserialises (phase 3), and the controller reconnects the recovered HAUs
(phase 4).  Source HAUs then replay the preserved tuples and the
application catches up.
"""

from __future__ import annotations


from repro.core.costs import CostModel
from repro.metrics.breakdown import RecoveryBreakdown
from repro.simulation.core import AllOf
from repro.storage.shared import StorageClient

CKPT_NS = "ckpt"


class GlobalRecovery:
    """Controller-side orchestration of a whole-application restart."""

    def __init__(self, scheme, runtime, costs: CostModel):
        self.scheme = scheme
        self.runtime = runtime
        self.costs = costs

    def run(self, dead_haus: list[str]):
        """Process generator driving the four phases; returns the breakdown."""
        rt = self.runtime
        env = rt.env
        record = RecoveryBreakdown(started_at=env.now)
        cut = self.scheme.last_complete_round()
        if env.trace.enabled:
            env.trace.emit(
                "recovery.start",
                t=env.now,
                subject=self.scheme.name,
                dead=",".join(sorted(dead_haus)),
                cut_round=cut[0] if cut is not None else 0,
            )
        rt.metrics.record_event(env.now, "recovery-start", ",".join(sorted(dead_haus)))

        # Quiesce what is left of the application: everything rolls back.
        rt.teardown_application()
        self.scheme.on_recovery_reset()

        # Assign nodes: keep the old node when alive; dead nodes are
        # replaced by claimed spares, preserving the original packing
        # density (a spare takes over a whole dead node's HAUs, round-robin
        # if fewer spares than dead nodes remain).
        dead_nodes = sorted(
            {n.node_id: n for n in rt.placement.values() if not n.alive}.values(),
            key=lambda n: n.node_id,
        )
        replacements = []
        for _ in dead_nodes:
            if rt.dc.spares_available() > 0:
                replacements.append(rt.dc.claim_spare())
            else:
                break
        if dead_nodes and not replacements:
            raise RuntimeError("recovery impossible: no healthy spare nodes")
        node_map = {
            dead.node_id: replacements[i % len(replacements)]
            for i, dead in enumerate(dead_nodes)
        }
        assignments = {}
        for hau_id, old_node in rt.placement.items():
            assignments[hau_id] = (
                old_node if old_node.alive else node_map[old_node.node_id]
            )

        # Phases 1-3 in parallel across HAUs (each on its recovery node).
        restored: dict[str, dict] = {}
        phase_times: dict[str, tuple[float, float, float]] = {}

        def recover_one(hau_id: str):
            node = assignments[hau_id]
            t0 = env.now
            if env.trace.enabled:
                env.trace.emit(
                    "recovery.hau.start",
                    t=t0,
                    subject=hau_id,
                    node=node.node_id,
                )
            yield env.timeout(self.costs.reload_seconds)  # phase 1: reload
            t1 = env.now
            payload = None
            read_bytes = 0
            if cut is not None and hau_id in cut[1]:
                client = StorageClient(node, rt.storage)
                versions = self.scheme.recovery_read_plan(
                    hau_id, cut_round=cut[0], cut_version=cut[1][hau_id]
                )
                for version in versions:
                    obj = yield from client.read(
                        CKPT_NS, hau_id, version=version, bulk=True
                    )
                    # every stored object carries the full payload (only the
                    # billed bytes differ under delta-checkpointing), so the
                    # last read yields the reconstructed state
                    payload = obj.value
                    read_bytes += obj.size
            t2 = env.now
            if read_bytes:
                yield env.timeout(self.costs.deserialize_time(read_bytes))  # phase 3
            t3 = env.now
            restored[hau_id] = payload
            phase_times[hau_id] = (t1 - t0, t2 - t1, t3 - t2)
            record.bytes_read += read_bytes
            if env.trace.enabled:
                env.trace.emit(
                    "recovery.hau",
                    t=env.now,
                    subject=hau_id,
                    node=node.node_id,
                    reload=t1 - t0,
                    disk_io=t2 - t1,
                    deserialize=t3 - t2,
                    bytes=read_bytes,
                )

        procs = [
            env.process(recover_one(hau_id), label=f"recover:{hau_id}")
            for hau_id in sorted(rt.app.graph.haus)
        ]
        yield AllOf(env, procs)

        record.reload_seconds = max(p[0] for p in phase_times.values())
        record.disk_io_seconds = max(p[1] for p in phase_times.values())
        record.deserialize_seconds = max(p[2] for p in phase_times.values())

        # Rebuild runtimes and channels from the restored payloads.
        rt.rewire(assignments, restored)

        # Phase 4: the controller reconnects the recovered HAUs.
        reconnect_start = env.now
        for _hau_id in sorted(rt.app.graph.haus):
            yield env.timeout(self.costs.reconnect_per_hau)
        record.reconnect_seconds = env.now - reconnect_start
        if env.trace.enabled:
            env.trace.emit(
                "recovery.reconnect",
                t=env.now,
                subject=self.scheme.name,
                seconds=record.reconnect_seconds,
                haus=len(rt.app.graph.haus),
            )
        # Recovery time is the sum of the four phases (§IV-C); the source
        # replay and catch-up that follow are not part of it ("since this
        # procedure is the same with previous schemes, we do not further
        # evaluate it").
        record.completed_at = env.now

        # Source replay: read the preserved tuples (billed to storage) and
        # queue them for full-speed re-emission.
        for src in rt.app.graph.sources():
            payload = restored.get(src)
            after_seq = 0
            if payload is not None:
                snaps = payload.get("operators", [])
                if snaps:
                    after_seq = int(snaps[0].get("emitted_count", 0))
            tuples = self.scheme.preserver.replay_tuples(src, after_seq)
            if tuples:
                node = assignments[src]
                replay_bytes = sum(t.size for t in tuples)
                if env.trace.enabled:
                    env.trace.emit(
                        "recovery.replay",
                        t=env.now,
                        subject=src,
                        node=node.node_id,
                        count=len(tuples),
                        bytes=replay_bytes,
                        after_seq=after_seq,
                    )
                yield from rt.storage.node.disk.transfer(replay_bytes)
                yield from rt.storage.node.nic_out.transfer(replay_bytes)
                rt.haus[src].set_replay_source(tuples)

        rt.restart_haus()
        record.haus_recovered = len(rt.app.graph.haus)
        if env.trace.enabled:
            env.trace.emit(
                "recovery.done",
                t=env.now,
                subject=self.scheme.name,
                total=record.total,
                reload=record.reload_seconds,
                disk_io=record.disk_io_seconds,
                deserialize=record.deserialize_seconds,
                reconnect=record.reconnect_seconds,
                bytes=record.bytes_read,
                haus=record.haus_recovered,
            )
        rt.metrics.record_event(env.now, "recovery-done", f"{record.total:.3f}s")
        return record
