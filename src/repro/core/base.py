"""Shared machinery of the Meteor Shower variants.

All MS variants share: source preservation, versioned checkpoint storage
keyed by (HAU, round), application-checkpoint completion tracking with
garbage collection of superseded rounds, controller-side failure
detection, and global-rollback recovery.  Variants differ only in *how*
a round is executed (token cascade vs broadcast; sync vs async) and
*when* rounds start (fixed schedule vs application-aware timing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import CostModel
from repro.core.preservation import SourcePreserver
from repro.core.recovery import GlobalRecovery
from repro.dsps.hau import HAURuntime
from repro.dsps.runtime import CheckpointScheme
from repro.dsps.tuples import DataTuple
from repro.metrics.breakdown import CheckpointBreakdown, CheckpointLog
from repro.simulation.core import Interrupt
from repro.storage.shared import StorageClient

CKPT_NS = "ckpt"


@dataclass
class RoundState:
    """Per-HAU bookkeeping for one checkpoint round."""

    round_id: int
    command_at: float = 0.0
    arrivals: set = field(default_factory=set)  # edge idx with token arrived
    processed: set = field(default_factory=set)  # edge idx with token popped
    ready: bool = False  # all tokens arrived
    snapshot_done: bool = False
    write_done: bool = False
    recording: bool = False
    out_copies: list = field(default_factory=list)  # (edge_id, DataTuple)
    tokens_done_at: float = 0.0


class MeteorShowerBase(CheckpointScheme):
    """Base for MS-src, MS-src+ap and MS-src+ap+aa."""

    name = "ms-base"

    def __init__(
        self,
        checkpoint_times: list[float] | None = None,
        costs: CostModel | None = None,
        enable_recovery: bool = False,
    ):
        super().__init__()
        self.checkpoint_times = sorted(checkpoint_times or [])
        self.costs = costs or CostModel()
        self.enable_recovery = enable_recovery
        self.preserver: SourcePreserver | None = None
        self.rounds: dict[tuple[str, int], RoundState] = {}
        # Per-HAU view of self.rounds (same RoundState objects): active_state
        # runs once per tuple on the hot path, and scanning every
        # (hau, round) pair there was ~5% of sweep wall-clock.
        self._hau_rounds: dict[str, list[RoundState]] = {}
        self.logs: dict[int, CheckpointLog] = {}
        self.completed_rounds: dict[int, dict[str, int]] = {}  # round -> hau -> version
        self.source_markers: dict[tuple[int, str], int] = {}  # (round, src) -> emitted_count
        self.recovery: GlobalRecovery | None = None
        self.recoveries: list = []
        self._round_counter = 0
        self._recovering = False

    # -- lifecycle ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        super().attach(runtime)
        self.preserver = SourcePreserver(runtime.storage)
        self.recovery = GlobalRecovery(self, runtime, self.costs)

    def start(self) -> None:
        rt = self.runtime
        if self.checkpoint_times:
            rt.dc.storage_node.spawn(self._coordinator(), label=f"{self.name}.coord")
        if self.enable_recovery:
            rt.dc.storage_node.spawn(self._failure_watcher(), label=f"{self.name}.watch")

    def _coordinator(self):
        """Fire one checkpoint round at each scheduled instant."""
        try:
            for when in self.checkpoint_times:
                delay = when - self.runtime.env.now
                if delay > 0:
                    yield self.runtime.env.timeout(delay)
                yield from self.initiate_round()
        except Interrupt:
            return

    def initiate_round(self):
        """Start one application checkpoint. Generator; scheme-specific."""
        raise NotImplementedError
        yield  # pragma: no cover

    def next_round_id(self) -> int:
        self._round_counter += 1
        env = self.runtime.env
        if env.trace.enabled:
            env.trace.emit(
                "checkpoint.round.start",
                t=env.now,
                subject=self.name,
                round=self._round_counter,
            )
        if env.telemetry.enabled:
            env.telemetry.counter("ms_checkpoint_rounds_total", scheme=self.name).inc()
        return self._round_counter

    # -- round state ----------------------------------------------------------------
    def round_state(self, hau_id: str, round_id: int) -> RoundState:
        st = self.rounds.get((hau_id, round_id))
        if st is None:
            st = RoundState(round_id=round_id)
            self.rounds[(hau_id, round_id)] = st
            self._hau_rounds.setdefault(hau_id, []).append(st)
        return st

    def log_for(self, round_id: int) -> CheckpointLog:
        log = self.logs.get(round_id)
        if log is None:
            log = CheckpointLog(
                round_id=round_id,
                started_at=self.runtime.env.now,
                expected_haus=tuple(sorted(self.runtime.app.graph.haus)),
            )
            self.logs[round_id] = log
        return log

    def active_state(self, hau_id: str) -> RoundState | None:
        """The HAU's most recent round that has not yet snapshotted."""
        best = None
        for st in self._hau_rounds.get(hau_id, ()):
            if not st.snapshot_done and (best is None or st.round_id > best.round_id):
                best = st
        return best

    # -- source preservation -------------------------------------------------------
    def on_source_emit(self, hau: HAURuntime, tup: DataTuple):
        yield from self.preserver.preserve(hau, tup)

    # -- checkpoint write -------------------------------------------------------------
    def write_checkpoint(
        self,
        hau: HAURuntime,
        payload: dict,
        bd: CheckpointBreakdown,
        billed_size: int | None = None,
    ):
        """Process generator: ship the individual checkpoint to storage.

        ``billed_size`` overrides the bytes actually moved (delta-
        checkpointing ships only the change; the stored value remains the
        full payload so restores stay exact — see repro.core.delta).
        """
        size = billed_size if billed_size is not None else payload["state_size"]
        bd.state_bytes = size
        bd.write_start_at = self.runtime.env.now
        trace = self.runtime.env.trace
        if trace.enabled:
            trace.emit(
                "checkpoint.write.start",
                t=self.runtime.env.now,
                subject=hau.hau_id,
                round=payload["round_id"],
                bytes=size,
            )
        client = StorageClient(hau.node, self.runtime.storage)
        version = yield from client.write(
            CKPT_NS, hau.hau_id, payload, size=max(size, 1), bulk=True
        )
        bd.write_end_at = self.runtime.env.now
        telem = self.runtime.env.telemetry
        if telem.enabled:
            telem.histogram(
                "ms_checkpoint_write_seconds", scheme=self.name
            ).observe(bd.write_end_at - bd.write_start_at)
            telem.counter("ms_checkpoint_bytes_total", scheme=self.name).inc(size)
            telem.gauge("ms_hau_ckpt_write_seconds", hau=hau.hau_id).set(
                bd.write_end_at - bd.write_start_at
            )
        if trace.enabled:
            trace.emit(
                "checkpoint.commit",
                t=self.runtime.env.now,
                subject=hau.hau_id,
                round=payload["round_id"],
                bytes=size,
                version=version,
                scheme=self.name,
            )
        self.mark_hau_done(payload["round_id"], hau.hau_id, version)
        return version

    def recovery_read_plan(self, hau_id: str, cut_round: int, cut_version: int) -> list[int]:
        """Storage versions a recovery must read for this HAU, in order.

        Plain checkpointing reads exactly the cut version; delta-enabled
        schemes override this with the full-plus-deltas chain."""
        return [cut_version]

    def mark_hau_done(self, round_id: int, hau_id: str, version: int) -> None:
        done = self.completed_rounds.setdefault(round_id, {})
        done[hau_id] = version
        st = self.rounds.get((hau_id, round_id))
        if st is not None:
            st.write_done = True
        if len(done) == len(self.runtime.app.graph.haus):
            log = self.log_for(round_id)
            if log.completed_at is None:
                log.completed_at = self.runtime.env.now
                env = self.runtime.env
                if env.trace.enabled:
                    env.trace.emit(
                        "checkpoint.round.complete",
                        t=env.now,
                        subject=self.name,
                        round=round_id,
                        haus=len(done),
                    )
                if env.telemetry.enabled:
                    env.telemetry.counter(
                        "ms_checkpoint_rounds_completed_total", scheme=self.name
                    ).inc()
            self._garbage_collect(round_id)

    def record_source_marker(self, round_id: int, hau: HAURuntime) -> None:
        if hau.is_source:
            self.source_markers[(round_id, hau.hau_id)] = hau.source_operator.emitted_count

    def last_complete_round(self) -> tuple[int, dict[str, int]] | None:
        complete = [
            (rid, versions)
            for rid, versions in self.completed_rounds.items()
            if len(versions) == len(self.runtime.app.graph.haus)
        ]
        if not complete:
            return None
        return max(complete, key=lambda rv: rv[0])

    def _garbage_collect(self, completed_round: int) -> None:
        """Drop checkpoint versions and preserved tuples superseded by the
        newly completed application checkpoint."""
        versions = self.completed_rounds[completed_round]
        storage = self.runtime.storage
        for hau_id, version in versions.items():
            storage.drop_versions_before(CKPT_NS, hau_id, version)
        for src in self.runtime.app.graph.sources():
            marker = self.source_markers.get((completed_round, src))
            if marker is not None:
                self.preserver.discard_through(src, marker)

    # -- failure detection / recovery ----------------------------------------------------
    def _failure_watcher(self):
        """Controller-side detector: ping nodes; trigger global recovery.

        The paper's controller pings source nodes; other nodes are
        monitored by their upstream neighbours, whose channel breaks feed
        :meth:`on_channel_broken`.  Both paths funnel here.
        """
        env = self.runtime.env
        try:
            while True:
                yield env.timeout(self.costs.ping_interval)
                dead = [
                    hau_id
                    for hau_id, hau in self.runtime.haus.items()
                    if not hau.node.alive
                ]
                if dead and not self._recovering:
                    self._recovering = True
                    if env.trace.enabled:
                        env.trace.emit(
                            "failure.detected",
                            t=env.now,
                            subject=self.name,
                            dead=",".join(sorted(dead)),
                        )
                    try:
                        record = yield from self.recovery.run(dead)
                        self.recoveries.append(record)
                        if env.telemetry.enabled:
                            env.telemetry.counter(
                                "ms_recoveries_total", scheme=self.name
                            ).inc()
                            env.telemetry.histogram(
                                "ms_recovery_seconds", scheme=self.name
                            ).observe(record.total)
                    except Exception as exc:
                        # Surface the failure instead of silently killing
                        # the watcher: the experiment can inspect events.
                        self.runtime.metrics.record_event(
                            env.now, "recovery-failed", repr(exc)
                        )
                        raise
                    finally:
                        self._recovering = False
        except Interrupt:
            return

    def on_channel_broken(self, hau: HAURuntime, edge_idx: int) -> None:
        # Upstream-neighbour monitoring: the break itself is the signal;
        # the watcher confirms on its next ping. Nothing to do here beyond
        # the paper's "notifies its upstream neighbour" bookkeeping.
        pass

    def on_recovery_reset(self) -> None:
        """Drop transient per-round state at the rollback instant.

        A round that was in flight when the failure hit can never complete
        (its tokens died with the channels); its RoundStates must not leak
        into the restarted application.
        """
        self.rounds = {
            key: st for key, st in self.rounds.items() if st.write_done
        }
        self._hau_rounds = {}
        for (hid, _rid), st in self.rounds.items():
            self._hau_rounds.setdefault(hid, []).append(st)

    # -- reporting ---------------------------------------------------------------------
    def checkpoint_logs(self) -> list[CheckpointLog]:
        return [self.logs[r] for r in sorted(self.logs)]
