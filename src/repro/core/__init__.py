"""Meteor Shower checkpoint schemes and the baseline (the paper's §III).

Four schemes, one interface:

* :class:`BaselineScheme` — state of the art circa 2012 (§II-B3):
  independent periodic synchronous checkpoints at random phases, with
  *input preservation* (every HAU retains output tuples in a 50 MB
  buffer spilling to local disk until the downstream checkpoint acks).
* :class:`MSSrc` — basic Meteor Shower: cascading tokens, synchronous
  individual checkpoints, *source preservation*.
* :class:`MSSrcAP` — + parallel (controller-broadcast 1-hop tokens) and
  asynchronous (fork/copy-on-write child) checkpointing.
* :class:`MSSrcAPAA` — + application-aware timing: profile state sizes,
  alert mode below ``smax``, trigger on the first non-negative aggregate
  ICR turning point.
* :class:`OracleScheme` — MS-src+ap checkpointing at externally supplied
  instants (the true state minima, measured from a prior run) — the
  paper's "Oracle" upper bound.

All Meteor Shower variants share global rollback recovery
(:mod:`repro.core.recovery`) and source preservation
(:mod:`repro.core.preservation`).
"""

from repro.core.costs import CostModel
from repro.core.base import MeteorShowerBase
from repro.core.baseline import BaselineScheme
from repro.core.ms_src import MSSrc
from repro.core.ms_ap import MSSrcAP, OracleScheme
from repro.core.ms_aa import MSSrcAPAA
from repro.core.recovery import GlobalRecovery
from repro.core.replication import ReplicationEstimator
from repro.core.delta import DeltaPolicy, DeltaTracker

__all__ = [
    "CostModel",
    "MeteorShowerBase",
    "BaselineScheme",
    "MSSrc",
    "MSSrcAP",
    "MSSrcAPAA",
    "OracleScheme",
    "GlobalRecovery",
    "ReplicationEstimator",
    "DeltaPolicy",
    "DeltaTracker",
]
