"""Cost model for checkpoint mechanics.

Centralised so benchmarks and ablations can vary them.  Values are
calibrated to the paper's platform (EC2 m1.small-class nodes, 2012):

* serialisation ~400 MB/s (memcpy-bound boost::serialization);
* ``fork()`` ~2 ms base + page-table setup proportional to resident
  state (~1 ms per 100 MB);
* copy-on-write tax: while an asynchronous checkpoint child is live,
  the parent's writes fault and copy pages — a mild, size-independent
  slowdown of the hot path;
* in-memory tuple copy for input preservation ~1 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    # ~100 MB/s: 2012-era boost::serialization over pointer-rich operator
    # state on a 2.3 GHz core (not a flat memcpy).
    serialize_bw: float = 100_000_000.0  # bytes/s
    deserialize_bw: float = 100_000_000.0  # bytes/s
    fork_base: float = 0.002  # seconds
    fork_per_byte: float = 1e-11  # seconds/byte: ~1 ms per 100 MB of state
    cow_tax: float = 0.06  # fractional CPU slowdown during async checkpoint
    memcpy_bw: float = 1_000_000_000.0  # bytes/s (input preservation copy)
    # Input preservation bills this fraction of the emitting operator's
    # per-tuple processing cost, on top of the modelled buffer/spill I/O.
    # Calibrated to the paper's measured zero-checkpoint gap (~35%
    # throughput / ~9% latency between baseline and MS-src): the paper's
    # C++ baseline pays tuple serialisation, buffer locking and memory
    # pressure that a pure bytes-moved model under-counts.  See
    # EXPERIMENTS.md "calibration".
    input_preservation_factor: float = 0.30
    reload_seconds: float = 0.35  # recovery phase 1: reload operators
    reconnect_per_hau: float = 0.012  # recovery phase 4: controller round trip
    ping_interval: float = 1.0  # controller failure-detection ping period
    control_rtt: float = 0.002  # controller <-> HAU query round trip

    def serialize_time(self, size: int) -> float:
        return size / self.serialize_bw

    def deserialize_time(self, size: int) -> float:
        return size / self.deserialize_bw

    def fork_time(self, size: int) -> float:
        return self.fork_base + size * self.fork_per_byte

    def memcpy_time(self, size: int) -> float:
        return size / self.memcpy_bw
