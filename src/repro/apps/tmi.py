"""Transportation Mode Inference (TMI) — Fig. 2, 55 HAUs.

"It collects the position data of mobile phones from base stations ...
infers the transportation mode (driving, taking bus, walking or
remaining still) of mobile phone bearers in real time.  The kernel of
TMI is the k-means clustering algorithm.  In each N-minute-long time
window, a k-means operator retains input tuples in an internal pool and
clusters the tuples at the end of the time window."

Topology: 10 position sources (S), 12 Pair operators (P) computing
speeds, 12 GoogleMap operators (M) attaching per-mode reference speeds —
each M connects to ALL 10 Group operators (G, key-hash routed) — 10
k-means operators (A), one sink (K).  10+12+12+10+10+1 = 55 HAUs.

The dataset stand-in: seeded synthetic phone trajectories with
mode-dependent speed distributions (the paper used 829 M anonymised
location records; see DESIGN.md substitutions).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppProfile, SizedPayload
from repro.apps.kernels.kmeans import kmeans
from repro.dsps.graph import QueryGraph
from repro.dsps.operator import Emit, Operator, SinkOperator, SourceOperator
from repro.state.spec import StateHint

PROFILE = AppProfile(
    name="tmi", hau_count=55, state_min_mb=0.0, state_max_mb=300.0,
    state_avg_mb=150.0, workload="low",
)

N_SOURCES = 10
N_PAIR = 12
N_GMAP = 12
N_GROUP = 10
N_KMEANS = 10

BATCH_SIZE = 300 * 1024  # one base-station batch on the wire (compressed records)
SUB_BATCH_SIZE = BATCH_SIZE // N_GROUP
POOL_ITEM_SIZE = SUB_BATCH_SIZE // 9  # decoded feature rows in the pool
PHONES_PER_BATCH = 40

# Per-byte CPU costs (seconds/byte); M is the bottleneck stage.
COST_SRC = 3e-9
COST_PAIR = 270e-9
COST_GMAP = 2700e-9
COST_GROUP = 400e-9
COST_KMEANS_APPEND = 270e-9

MODE_SPEEDS = {0: 0.2, 1: 1.4, 2: 8.0, 3: 16.0}  # still/walk/bus/drive m/s


class PositionSource(SourceOperator):
    """A base station emitting aggregated position batches (closed loop)."""

    def __init__(self, seed: int, station: int, count: int, interval: float):
        super().__init__(name=f"S{station}")
        self.seed = seed
        self.station = station
        self.count = count
        self.interval = interval

    def generate(self):
        rng = np.random.default_rng(self.seed)
        for i in range(self.count):
            modes = rng.integers(0, 4, size=PHONES_PER_BATCH)
            speeds = np.array([MODE_SPEEDS[int(m)] for m in modes])
            speeds = speeds * rng.uniform(0.7, 1.3, size=PHONES_PER_BATCH)
            phones = rng.integers(0, 10_000, size=PHONES_PER_BATCH)
            positions = rng.uniform(0, 1000, size=(PHONES_PER_BATCH, 2))
            batch = SizedPayload(
                data={
                    "station": self.station,
                    "phones": phones,
                    "positions": positions,
                    "speeds": speeds,  # ground truth for accuracy checks
                    "batch_no": i,
                },
                nominal_size=BATCH_SIZE,
            )
            # key alternates per batch so stations with two Pair operators
            # (S8, S9) split their stream instead of duplicating it
            yield (self.interval, Emit(payload=batch, size=BATCH_SIZE, key=(self.station, i)))

    def processing_cost(self, tup):
        return COST_SRC * tup.size


class PairOperator(Operator):
    """Computes per-phone speeds by pairing consecutive position batches.

    State: the previous batch per station (bounded; small)."""

    state_attrs = ("last_positions",)
    state_hints = {"last_positions": StateHint(element_size=64)}

    def __init__(self, idx: int):
        super().__init__(name=f"P{idx}")
        self.last_positions: dict = {}

    def on_tuple(self, port, tup):
        batch = tup.payload.data
        prev = self.last_positions.get(batch["station"])
        self.last_positions[batch["station"]] = batch["positions"]
        if prev is not None and len(prev) == len(batch["positions"]):
            displacement = np.linalg.norm(batch["positions"] - prev, axis=1)
        else:
            displacement = np.zeros(len(batch["positions"]))
        speeds = SizedPayload(
            data={
                "phones": batch["phones"],
                "speeds": batch["speeds"],  # measured speeds (synthetic truth)
                "displacement": displacement,
            },
            nominal_size=BATCH_SIZE,
        )
        return [Emit(payload=speeds, size=BATCH_SIZE, key=batch["station"])]

    def processing_cost(self, tup):
        return COST_PAIR * tup.size


class GoogleMapOperator(Operator):
    """Attaches per-mode reference speeds ("downloading reference speed for
    each transportation mode") and splits the batch into per-group
    sub-batches, key-routed to all Group operators."""

    state_attrs = ("reference_cache",)
    state_hints = {"reference_cache": StateHint(element_size=256)}

    def __init__(self, idx: int):
        super().__init__(name=f"M{idx}")
        self.reference_cache: dict = {m: MODE_SPEEDS[m] for m in MODE_SPEEDS}

    def on_tuple(self, port, tup):
        data = tup.payload.data
        groups = data["phones"] % N_GROUP
        out = []
        for g in range(N_GROUP):
            mask = groups == g
            if not mask.any():
                continue
            features = np.column_stack(
                [data["speeds"][mask], data["displacement"][mask]]
            )
            sub = SizedPayload(
                data={"group": g, "phones": data["phones"][mask], "features": features},
                nominal_size=SUB_BATCH_SIZE,
            )
            out.append(Emit(payload=sub, size=SUB_BATCH_SIZE, key=g))
        return out

    def processing_cost(self, tup):
        return COST_GMAP * tup.size


class GroupOperator(Operator):
    """Collects one phone-group's sub-batches and forwards to its k-means."""

    state_attrs = ("forwarded",)

    def __init__(self, idx: int):
        super().__init__(name=f"G{idx}")
        self.idx = idx
        self.forwarded = 0

    def on_tuple(self, port, tup):
        self.forwarded += 1
        return [Emit(payload=tup.payload, size=tup.size, key=self.idx)]

    def processing_cost(self, tup):
        return COST_GROUP * tup.size


class KMeansOperator(Operator):
    """Pools features for an N-minute window, clusters at the boundary.

    The pool is the dominant, sawtooth-shaped state (Fig. 5a): it ramps to
    tens of MB and collapses to nothing when the window is clustered and
    discarded."""

    state_attrs = ("pool", "window_start", "windows_done")
    state_hints = {"pool": StateHint(element_size=POOL_ITEM_SIZE)}

    def __init__(self, idx: int, window_seconds: float):
        super().__init__(name=f"A{idx}")
        self.idx = idx
        self.window_seconds = window_seconds
        self.pool: list = []
        self.window_start: float = -1.0
        self.windows_done = 0

    def on_tuple(self, port, tup):
        # window boundaries are data-driven (tuple creation times), so a
        # recovered operator reproduces the failed one's windows exactly
        if self.window_start < 0:
            self.window_start = tup.created_at
        out = []
        if tup.created_at - self.window_start >= self.window_seconds and self.pool:
            out.append(self._flush())
            self.window_start = tup.created_at
        self.pool.append(tup.payload)
        return out

    def _flush(self) -> Emit:
        features = np.vstack([p.data["features"] for p in self.pool])
        centroids, labels = kmeans(features, k=4, iterations=8)
        counts = np.bincount(labels, minlength=4)
        self.pool = []
        self.windows_done += 1
        result = SizedPayload(
            data={
                "group": self.idx,
                "window": self.windows_done,
                "centroids": centroids,
                "mode_counts": counts,
                "n_points": len(features),
            },
            nominal_size=4096,
        )
        return Emit(payload=result, size=4096, key=self.idx)

    def processing_cost(self, tup):
        return COST_KMEANS_APPEND * tup.size


def build(
    seed: int = 0,
    n_minutes: float = 10.0,
    batches_per_source: int = 100000,
    source_interval: float = 0.55,
) -> "StreamApplication":
    """Build the TMI application.

    ``n_minutes`` is the paper's N (k-means window length).  Sources are
    effectively closed-loop: ``source_interval`` is the minimum pacing and
    backpressure governs the real rate.
    """
    from repro.dsps.application import StreamApplication

    g = QueryGraph()
    window_seconds = n_minutes * 60.0

    for i in range(N_SOURCES):
        g.add_hau(
            f"S{i}",
            (lambda i=i: [PositionSource(seed * 1000 + i, i, batches_per_source, source_interval)]),
            is_source=True,
        )
    for i in range(N_PAIR):
        g.add_hau(f"P{i}", lambda i=i: [PairOperator(i)])
    for i in range(N_GMAP):
        g.add_hau(f"M{i}", lambda i=i: [GoogleMapOperator(i)])
    for i in range(N_GROUP):
        g.add_hau(f"G{i}", lambda i=i: [GroupOperator(i)])
    for i in range(N_KMEANS):
        g.add_hau(f"A{i}", lambda i=i: [KMeansOperator(i, window_seconds)])
    g.add_hau("K", lambda: [SinkOperator(name="K")], is_sink=True)

    # S -> P: one per pair operator; S8 and S9 hash-split their streams
    # across a second Pair operator each (P10, P11).
    for i in range(8):
        g.connect(f"S{i}", f"P{i}")
    g.connect("S8", "P8", routing="hash")
    g.connect("S8", "P10", routing="hash")
    g.connect("S9", "P9", routing="hash")
    g.connect("S9", "P11", routing="hash")
    # P -> M 1:1; each M -> all G (hash on phone-group key).
    for i in range(N_GMAP):
        g.connect(f"P{i}", f"M{i}")
        for j in range(N_GROUP):
            g.connect(f"M{i}", f"G{j}", routing="hash")
    for j in range(N_GROUP):
        g.connect(f"G{j}", f"A{j}")
        g.connect(f"A{j}", "K")

    return StreamApplication(
        name="tmi",
        graph=g,
        params={"n_minutes": n_minutes, "seed": seed, "probe_prefix": "A"},
    )
