"""The paper's three evaluation applications (§II-B2), built for real.

* :mod:`repro.apps.tmi` — Transportation Mode Inference: k-means over
  windowed phone-position streams (Fig. 2, 55 HAUs).
* :mod:`repro.apps.bcp` — Bus Capacity Prediction: camera people
  counting with per-stop historical images cleared on bus arrivals
  (Fig. 3, 55 HAUs).
* :mod:`repro.apps.signalguru` — traffic-signal transition prediction
  from windshield iPhones: colour/shape/motion filtering with per-
  intersection frame retention (Fig. 4, 55 HAUs).

Each module exposes ``build(seed, **params) -> StreamApplication`` plus
an ``AppProfile`` describing its paper-reported state-size envelope.
The kernels (k-means, people counting, SVM) are genuinely computed on
synthetic data shaped like the paper's datasets; tuple/state sizes are
nominal bytes calibrated to Fig. 5 (see DESIGN.md substitutions).
"""

from repro.apps.base import AppProfile, SizedPayload
from repro.apps import tmi, bcp, signalguru, synth

APPS = {
    "tmi": tmi,
    "bcp": bcp,
    "signalguru": signalguru,
    "synth": synth,
}

__all__ = ["AppProfile", "SizedPayload", "APPS", "tmi", "bcp", "signalguru", "synth"]
