"""Synthetic-image kernels for BCP and SignalGuru.

A "frame" is a small numpy intensity grid with geometrically embedded
blobs (people, traffic lights).  The kernels do real array work —
thresholding, connected-component counting, colour/shape masks, frame
differencing — on data whose statistics are controlled by the workload
generators, while the *nominal* frame size carries the paper-scale byte
accounting (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

FRAME_SHAPE = (24, 24)
PERSON_INTENSITY = 200.0
LIGHT_INTENSITY = {"red": 80.0, "yellow": 120.0, "green": 160.0}
BACKGROUND_NOISE = 10.0


def make_frame(
    rng: np.random.Generator,
    people: int = 0,
    light: str | None = None,
    shape: tuple[int, int] = FRAME_SHAPE,
) -> np.ndarray:
    """Render a synthetic frame with ``people`` 2x2 blobs and optionally a
    traffic light patch of the given colour."""
    frame = rng.uniform(0.0, BACKGROUND_NOISE, size=shape)
    h, w = shape
    taken: set[tuple[int, int]] = set()
    placed = 0
    # deterministic-ish placement grid: blobs on a 4-pixel lattice so they
    # never merge (keeps count_people exact)
    cells = [(r, c) for r in range(1, h - 2, 4) for c in range(1, w - 2, 4)]
    order = rng.permutation(len(cells))
    for idx in order:
        if placed >= people:
            break
        r, c = cells[idx]
        if (r, c) in taken:
            continue
        frame[r : r + 2, c : c + 2] = PERSON_INTENSITY
        taken.add((r, c))
        placed += 1
    if light is not None:
        frame[0:2, w - 3 : w - 1] = LIGHT_INTENSITY[light]
    return frame


def count_people(frame: np.ndarray, threshold: float = 150.0) -> int:
    """Count connected bright blobs (4-connectivity flood fill)."""
    mask = frame > threshold
    # exclude the traffic-light patch region? people blobs are 200, lights
    # <=160 < threshold 150? green is 160 > 150 — mask it out explicitly.
    mask &= frame >= PERSON_INTENSITY - 1.0
    visited = np.zeros_like(mask, dtype=bool)
    h, w = mask.shape
    count = 0
    for r in range(h):
        for c in range(w):
            if mask[r, c] and not visited[r, c]:
                count += 1
                stack = [(r, c)]
                visited[r, c] = True
                while stack:
                    rr, cc = stack.pop()
                    for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                        nr, nc = rr + dr, cc + dc
                        if 0 <= nr < h and 0 <= nc < w and mask[nr, nc] and not visited[nr, nc]:
                            visited[nr, nc] = True
                            stack.append((nr, nc))
    return count


def color_filter(frame: np.ndarray) -> str | None:
    """Detect which traffic-light colour (if any) is present."""
    patch = frame[0:2, -3:-1]
    mean = float(patch.mean())
    best, best_err = None, 15.0
    for colour, intensity in LIGHT_INTENSITY.items():
        err = abs(mean - intensity)
        if err < best_err:
            best, best_err = colour, err
    return best


def shape_filter(frame: np.ndarray, colour: str | None) -> bool:
    """Verify the candidate light patch has the expected 2x2 shape."""
    if colour is None:
        return False
    intensity = LIGHT_INTENSITY[colour]
    patch = frame[0:2, -3:-1]
    return bool(np.all(np.abs(patch - intensity) < 10.0))


def frame_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute difference — the motion-filter primitive."""
    return float(np.abs(a.astype(float) - b.astype(float)).mean())
