"""Real computational kernels behind the application operators."""

from repro.apps.kernels.kmeans import kmeans, assign_clusters
from repro.apps.kernels.vision import (
    make_frame,
    count_people,
    color_filter,
    shape_filter,
    frame_difference,
)
from repro.apps.kernels.svm import LinearSVM

__all__ = [
    "kmeans",
    "assign_clusters",
    "make_frame",
    "count_people",
    "color_filter",
    "shape_filter",
    "frame_difference",
    "LinearSVM",
]
