"""A tiny linear SVM (primal, sub-gradient trained) — SignalGuru's and
BCP's prediction-model kernel.

Trained deterministically at operator setup on synthetic data drawn from
the same distribution the stream generators use, so predictions are a
pure function of the input features (required for recovery determinism).
"""

from __future__ import annotations

import numpy as np


class LinearSVM:
    """Binary linear SVM with hinge loss, trained by deterministic
    full-batch sub-gradient descent."""

    def __init__(self, dim: int, reg: float = 0.01):
        self.w = np.zeros(dim, dtype=float)
        self.b = 0.0
        self.reg = reg
        self.trained = False

    def fit(self, X: np.ndarray, y: np.ndarray, epochs: int = 50, lr: float = 0.1) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be in {-1, +1}")
        for _ in range(epochs):
            margins = y * (X @ self.w + self.b)
            active = margins < 1.0
            grad_w = self.reg * self.w - (y[active, None] * X[active]).mean(axis=0) if active.any() else self.reg * self.w
            grad_b = -(y[active]).mean() if active.any() else 0.0
            self.w -= lr * grad_w
            self.b -= lr * grad_b
        self.trained = True
        return self

    def decision(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=float) @ self.w + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision(X) >= 0.0, 1, -1)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
