"""Deterministic Lloyd's k-means — the kernel of TMI (§II-B2).

"The kernel of TMI is the k-means clustering algorithm.  The k-means
operators manipulate data in batches": within each N-minute window the
operator pools speed/acceleration features and clusters them into the
four transportation modes (driving, bus, walking, still) at the window
boundary.

Vectorised numpy throughout (per the HPC guides: no Python loops over
points); deterministic initialisation (evenly spaced sorted seeds) so a
recovered operator reproduces the failed one's output bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def _init_centroids(points: np.ndarray, k: int) -> np.ndarray:
    """Deterministic seeding: points at evenly spaced ranks of the first
    feature — stable under permutation of the input batch."""
    order = np.argsort(points[:, 0], kind="stable")
    idx = order[np.linspace(0, len(points) - 1, k).astype(int)]
    return points[idx].astype(float).copy()


def kmeans(
    points: np.ndarray, k: int = 4, iterations: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` (n, d); returns (centroids (k, d), labels (n,)).

    Fixed iteration count keeps the work per window deterministic and
    bounded; empty clusters keep their previous centroid.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    k = min(k, len(points))
    centroids = _init_centroids(points, k)
    labels = np.zeros(len(points), dtype=int)
    for _ in range(iterations):
        # squared distances via broadcasting: (n, k)
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return centroids, labels


def assign_clusters(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (used when applying a learnt model)."""
    points = np.asarray(points, dtype=float)
    centroids = np.asarray(centroids, dtype=float)
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return d2.argmin(axis=1)
