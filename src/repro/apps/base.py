"""Shared application plumbing: sized payloads and app profiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class SizedPayload:
    """A payload with an explicit nominal size (DESIGN.md convention).

    The ``data`` inside is real (numpy arrays, dicts) but deliberately
    small; ``nominal_size`` is what the object *would* weigh in the
    paper's deployment (e.g. a 500 KB camera frame), and is what every
    byte-accounting path (state size, wire size, disk time) uses.
    """

    data: Any
    nominal_size: int

    def __post_init__(self):
        self.nominal_size = int(self.nominal_size)


@dataclass(frozen=True)
class AppProfile:
    """Paper-reported characteristics used to validate the reproduction."""

    name: str
    hau_count: int
    state_min_mb: float  # Fig. 5 envelope
    state_max_mb: float
    state_avg_mb: float
    workload: str  # "low" | "medium" | "high"


MB = 1024 * 1024
