"""Declarative synthetic application: a stream graph built from data.

Where :mod:`repro.apps.tmi` / ``bcp`` / ``signalguru`` hard-code the
paper's three evaluation topologies, ``synth`` constructs an
application from a JSON-ready *topology spec* — the stream-graph half
of the scenario DSL (:mod:`repro.scenarios`).  A topology is a list of
**stages** (replica groups of one operator shape) plus **edges**
between stages::

    topology = {
        "stages": [
            {"name": "S", "kind": "source", "replicas": 4,
             "count": 80, "interval": 0.5, "size": 65536,
             "shape": "constant"},                   # | poisson | burst
            {"name": "W", "kind": "map", "replicas": 4,
             "size": 32768, "cost_per_byte": 2e-7, "state_window": 40},
            {"name": "K", "kind": "sink", "replicas": 1},
        ],
        "edges": [
            {"src": "S", "dst": "W", "routing": "hash", "pairing": "all"},
            {"src": "W", "dst": "K"},
        ],
    }

Every field is a scalar, so topologies ride through ``app_params``,
``config_fingerprint`` and the sweep cache unchanged.  Determinism
contract: sources draw from ``np.random.default_rng`` streams derived
from the experiment seed and the stage index, tuples carry integer
routing keys (``hash(int)`` is the identity, immune to
``PYTHONHASHSEED``), and map state is a bounded pool cleared at
``state_window`` — a sawtooth like the paper's k-means pools.

HAU ids are ``{name}{i}`` per replica (bare ``name`` for single-replica
stages), so stage names double as metric/probe prefixes; no stage name
may be a prefix of another.  Each outgoing edge-group of a stage gets
its own source port: map operators emit once per out-group, so fan-out
to two stages duplicates the stream (broadcast semantics between
groups, per-edge ``routing`` within a group).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppProfile, SizedPayload
from repro.dsps.graph import QueryGraph
from repro.dsps.operator import Emit, Operator, SinkOperator, SourceOperator
from repro.state.spec import StateHint

PROFILE = AppProfile(
    name="synth", hau_count=55, state_min_mb=0.0, state_max_mb=200.0,
    state_avg_mb=60.0, workload="medium",
)

STAGE_KINDS = ("source", "map", "sink")
SOURCE_SHAPES = ("constant", "poisson", "burst")
ROUTINGS = ("broadcast", "hash")
PAIRINGS = ("all", "aligned")

DEFAULT_SIZE = 64 * 1024
DEFAULT_INTERVAL = 0.55
DEFAULT_COUNT = 100_000
DEFAULT_COST_PER_BYTE = 270e-9
DEFAULT_SOURCE_COST_PER_BYTE = 3e-9
DEFAULT_FIXED_COST = 20e-6
DEFAULT_STATE_WINDOW = 64
DEFAULT_KEYSPACE = 1024

#: The default pipeline: 55 HAUs shaped like the paper's applications
#: (10 sources, two 22-wide processing tiers, one sink) so ``synth``
#: satisfies the same structural contract as tmi/bcp/signalguru.
DEFAULT_TOPOLOGY = {
    "stages": [
        {"name": "S", "kind": "source", "replicas": 10},
        {"name": "W", "kind": "map", "replicas": 22, "state_window": 32},
        {"name": "A", "kind": "map", "replicas": 22, "state_window": 96},
        {"name": "K", "kind": "sink", "replicas": 1},
    ],
    "edges": [
        {"src": "S", "dst": "W", "routing": "hash", "pairing": "all"},
        {"src": "W", "dst": "A", "pairing": "aligned"},
        {"src": "A", "dst": "K"},
    ],
}


class TopologyError(ValueError):
    """Malformed synthetic-topology spec (message names the bad field)."""


class SynthSource(SourceOperator):
    """A seeded generator stage replica.

    ``shape`` picks the inter-arrival process: ``constant`` (fixed
    ``interval``), ``poisson`` (exponential inter-arrivals with mean
    ``interval``) or ``burst`` (``burst_len`` tuples at ``interval /
    burst_factor`` then one long gap, mean rate preserved).
    """

    def __init__(
        self,
        seed: int,
        name: str,
        count: int,
        interval: float,
        size: int,
        shape: str = "constant",
        burst_len: int = 16,
        burst_factor: float = 8.0,
        keyspace: int = DEFAULT_KEYSPACE,
    ):
        super().__init__(name=name)
        self.seed = seed
        self.count = int(count)
        self.interval = float(interval)
        self.size = int(size)
        self.shape = shape
        self.burst_len = int(burst_len)
        self.burst_factor = float(burst_factor)
        self.keyspace = int(keyspace)

    def generate(self):
        rng = np.random.default_rng(self.seed)
        fast = self.interval / self.burst_factor
        # burst mean rate == constant rate: the gap repays the fast phase
        gap = self.interval * self.burst_len - fast * (self.burst_len - 1)
        for i in range(self.count):
            if self.shape == "poisson":
                delay = float(rng.exponential(self.interval))
            elif self.shape == "burst":
                delay = gap if i % self.burst_len == 0 else fast
            else:
                delay = self.interval
            key = int(rng.integers(self.keyspace))
            payload = SizedPayload(
                data={"i": i, "src": self.name, "key": key},
                nominal_size=self.size,
            )
            yield (delay, Emit(payload=payload, size=self.size, key=key))

    def processing_cost(self, tup):
        return DEFAULT_SOURCE_COST_PER_BYTE * tup.size


class SynthWorker(Operator):
    """A stateful transform stage replica.

    Retains processed payloads in a bounded pool that clears at
    ``state_window`` elements (sawtooth state, Fig. 5 shape); emits one
    transformed tuple of ``out_size`` bytes per out-group, preserving
    the routing key.
    """

    state_attrs = ("pool", "processed")

    def __init__(
        self,
        name: str,
        out_size: int,
        cost_per_byte: float,
        state_window: int,
        out_ports: int,
    ):
        super().__init__(name=name)
        self.out_size = int(out_size)
        self.cost_per_byte = float(cost_per_byte)
        self.state_window = int(state_window)
        self.out_ports = int(out_ports)
        self.pool: list = []
        self.processed = 0
        # element sizes vary per topology: hint with the emit size
        self.state_hints = {"pool": StateHint(element_size=self.out_size)}

    def on_tuple(self, port, tup):
        self.processed += 1
        self.pool.append(
            SizedPayload(data={"i": self.processed}, nominal_size=self.out_size)
        )
        if len(self.pool) >= self.state_window:
            self.pool = []
        payload = SizedPayload(
            data={"i": self.processed, "via": self.name, "key": tup.key},
            nominal_size=self.out_size,
        )
        return [
            Emit(payload=payload, size=self.out_size, port=p, key=tup.key)
            for p in range(self.out_ports)
        ]

    def processing_cost(self, tup):
        return DEFAULT_FIXED_COST + self.cost_per_byte * tup.size


# -- topology validation ------------------------------------------------------

def _require(cond: bool, message: str) -> None:
    if not cond:
        raise TopologyError(message)


def _check_topology(topo: dict) -> tuple[list[dict], list[dict]]:
    _require(isinstance(topo, dict), "topology must be a mapping")
    stages = topo.get("stages")
    edges = topo.get("edges")
    _require(isinstance(stages, list) and stages, "topology.stages must be a non-empty list")
    _require(isinstance(edges, list) and edges, "topology.edges must be a non-empty list")
    names: list[str] = []
    for i, stage in enumerate(stages):
        _require(isinstance(stage, dict), f"topology.stages[{i}] must be a mapping")
        name = stage.get("name")
        _require(
            isinstance(name, str) and name.isidentifier(),
            f"topology.stages[{i}].name must be an identifier string",
        )
        kind = stage.get("kind")
        _require(
            kind in STAGE_KINDS,
            f"topology.stages[{i}].kind {kind!r} is not one of {STAGE_KINDS}",
        )
        replicas = stage.get("replicas", 1)
        _require(
            isinstance(replicas, int) and replicas >= 1,
            f"topology.stages[{i}].replicas must be an int >= 1",
        )
        seed_base = stage.get("seed_base", 0)
        _require(
            isinstance(seed_base, int) and seed_base >= 0,
            f"topology.stages[{i}].seed_base must be an int >= 0",
        )
        shape = stage.get("shape", "constant")
        _require(
            shape in SOURCE_SHAPES,
            f"topology.stages[{i}].shape {shape!r} is not one of {SOURCE_SHAPES}",
        )
        names.append(name)
    _require(len(set(names)) == len(names), "topology stage names must be unique")
    for a in names:
        for b in names:
            _require(
                a == b or not b.startswith(a),
                f"stage name {a!r} is a prefix of {b!r} — HAU ids would be ambiguous",
            )
    by_name = {s["name"]: s for s in stages}
    for i, edge in enumerate(edges):
        _require(isinstance(edge, dict), f"topology.edges[{i}] must be a mapping")
        for end in ("src", "dst"):
            _require(
                edge.get(end) in by_name,
                f"topology.edges[{i}].{end} {edge.get(end)!r} is not a declared stage",
            )
        routing = edge.get("routing", "broadcast")
        _require(
            routing in ROUTINGS,
            f"topology.edges[{i}].routing {routing!r} is not one of {ROUTINGS}",
        )
        pairing = edge.get("pairing", "all")
        _require(
            pairing in PAIRINGS,
            f"topology.edges[{i}].pairing {pairing!r} is not one of {PAIRINGS}",
        )
        _require(
            by_name[edge["dst"]]["kind"] != "source",
            f"topology.edges[{i}]: source stage {edge['dst']!r} cannot receive an edge",
        )
        _require(
            by_name[edge["src"]].get("kind") != "sink",
            f"topology.edges[{i}]: sink stage {edge['src']!r} cannot emit an edge",
        )
    return stages, edges


def _hau_ids(stage: dict) -> list[str]:
    n = stage.get("replicas", 1)
    if n == 1:
        return [stage["name"]]
    return [f"{stage['name']}{i}" for i in range(n)]


def build(seed: int = 0, topology: dict | None = None) -> "StreamApplication":
    """Build a synthetic application from a declarative topology spec."""
    from repro.dsps.application import StreamApplication

    topo = topology if topology is not None else DEFAULT_TOPOLOGY
    stages, edges = _check_topology(topo)
    by_name = {s["name"]: s for s in stages}
    # src_port per outgoing edge-group, in edge-list order
    out_groups: dict[str, list[dict]] = {s["name"]: [] for s in stages}
    for edge in edges:
        out_groups[edge["src"]].append(edge)

    g = QueryGraph()
    for si, stage in enumerate(stages):
        kind = stage["kind"]
        n_ports = max(1, len(out_groups[stage["name"]]))
        for ri, hau_id in enumerate(_hau_ids(stage)):
            if kind == "source":
                maker = (
                    lambda stage=stage, si=si, ri=ri, hau_id=hau_id: [
                        SynthSource(
                            # seed_base shifts replica indices within the
                            # stage's seed stream: rack shards (see
                            # repro.harness.shard) use it so local replica j
                            # draws the same source stream as global replica
                            # seed_base + j in the unsharded topology.
                            seed=seed * 10_000 + si * 100
                            + stage.get("seed_base", 0) + ri,
                            name=hau_id,
                            count=stage.get("count", DEFAULT_COUNT),
                            interval=stage.get("interval", DEFAULT_INTERVAL),
                            size=stage.get("size", DEFAULT_SIZE),
                            shape=stage.get("shape", "constant"),
                            burst_len=stage.get("burst_len", 16),
                            burst_factor=stage.get("burst_factor", 8.0),
                            keyspace=stage.get("keyspace", DEFAULT_KEYSPACE),
                        )
                    ]
                )
                g.add_hau(hau_id, maker, is_source=True)
            elif kind == "map":
                maker = (
                    lambda stage=stage, hau_id=hau_id, n_ports=n_ports: [
                        SynthWorker(
                            name=hau_id,
                            out_size=stage.get("size", DEFAULT_SIZE),
                            cost_per_byte=stage.get(
                                "cost_per_byte", DEFAULT_COST_PER_BYTE
                            ),
                            state_window=stage.get(
                                "state_window", DEFAULT_STATE_WINDOW
                            ),
                            out_ports=n_ports,
                        )
                    ]
                )
                g.add_hau(hau_id, maker)
            else:
                g.add_hau(
                    hau_id,
                    lambda hau_id=hau_id: [SinkOperator(name=hau_id)],
                    is_sink=True,
                )

    for edge in edges:
        src_stage, dst_stage = by_name[edge["src"]], by_name[edge["dst"]]
        port = out_groups[edge["src"]].index(edge)
        routing = edge.get("routing", "broadcast")
        pairing = edge.get("pairing", "all")
        src_ids, dst_ids = _hau_ids(src_stage), _hau_ids(dst_stage)
        if pairing == "aligned":
            for i, src_id in enumerate(src_ids):
                g.connect(src_id, dst_ids[i % len(dst_ids)], src_port=port,
                          routing=routing)
        else:
            for src_id in src_ids:
                for dst_id in dst_ids:
                    g.connect(src_id, dst_id, src_port=port, routing=routing)

    # probe at the last map stage before a sink (falls back to the sink)
    sinks = [s for s in stages if s["kind"] == "sink"]
    maps = [s for s in stages if s["kind"] == "map"]
    probe = (maps[-1] if maps else sinks[0])["name"] if sinks else stages[-1]["name"]
    return StreamApplication(
        name="synth",
        graph=g,
        params={"topology": topo, "seed": seed, "probe_prefix": probe},
    )
