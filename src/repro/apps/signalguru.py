"""SignalGuru — Fig. 4, 55 HAUs.

"It predicts the transition time of a traffic light at an intersection
and advises drivers on the optimal speed ... SignalGuru leverages
windshield-mounted iPhones to take pictures of an intersection ...  The
motion filtering operators preserve all pictures taken by an iPhone at
a specific intersection, until the vehicle carrying the iPhone device
leaves the intersection (usually 10-40 seconds)."

Topology (55): 4 iPhone frame sources S0-3, 4 dispatchers D0-3, 12
colour filters C0-11, 12 shape filters A0-11, 12 motion filters M0-11
(the dominant, bursty state of Fig. 5c), 4 voting operators V0-3, 4
groups G0-3, 2 SVM predictors P0-1, sink K.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppProfile, SizedPayload
from repro.apps.kernels.svm import LinearSVM
from repro.apps.kernels.vision import color_filter, make_frame, shape_filter
from repro.dsps.graph import QueryGraph
from repro.dsps.operator import Emit, Operator, SinkOperator, SourceOperator
from repro.state.spec import StateHint

PROFILE = AppProfile(
    name="signalguru", hau_count=55, state_min_mb=200.0, state_max_mb=2048.0,
    state_avg_mb=1024.0, workload="high",
)

FRAME_SIZE = 300 * 1024  # compressed iPhone frame on the wire
RETAINED_FRAME_BASE = 1536 * 1024  # decoded frame retained by motion filters
LIGHT_CYCLE = ("red", "green", "yellow")

COST_SRC = 3e-9
COST_DISPATCH = 20e-9
COST_COLOR = 500e-9
COST_SHAPE = 500e-9
COST_MOTION = 1500e-9  # the bottleneck stage
COST_VOTE = 40e-9
COST_GROUP = 30e-9
COST_PRED = 60e-9


class PhoneSource(SourceOperator):
    """iPhones at one intersection: frames tagged with a vehicle-presence
    episode (10-40 s), driving the motion filters' bursty retention."""

    def __init__(self, seed: int, intersection: int, count: int, interval: float):
        super().__init__(name=f"S{intersection}")
        self.seed = seed
        self.intersection = intersection
        self.count = count
        self.interval = interval

    def generate(self):
        rng = np.random.default_rng(self.seed)
        clock = 0.0
        episode_end = 0.0
        episode_id = -1
        pending_gap = 0.0
        phase_len = float(rng.uniform(20, 40))
        for i in range(self.count):
            delay = self.interval + pending_gap
            pending_gap = 0.0
            clock += delay
            if clock >= episode_end:
                # The next vehicle arrives after an inter-vehicle gap with
                # no phone at the intersection: no frames flow and the
                # motion filters' retained state drains — the deep minima
                # application-aware checkpointing hunts for (Fig. 5c).
                episode_id += 1
                dwell = float(rng.uniform(10, 40))  # "usually 10~40 seconds"
                pending_gap = float(rng.uniform(5, 20))
                episode_end = clock + dwell
            light = LIGHT_CYCLE[int(clock / phase_len) % 3]
            payload = SizedPayload(
                data={
                    "intersection": self.intersection,
                    "frame": make_frame(rng, people=0, light=light),
                    "episode": episode_id,
                    "vehicle_leaves": bool(clock + self.interval >= episode_end),
                    "true_light": light,
                    "frame_no": i,
                },
                nominal_size=FRAME_SIZE,
            )
            yield (delay, Emit(payload=payload, size=FRAME_SIZE,
                               key=(self.intersection, i)))

    def processing_cost(self, tup):
        return COST_SRC * tup.size


class Dispatcher(Operator):
    state_attrs = ("dispatched",)

    def __init__(self, idx: int):
        super().__init__(name=f"D{idx}")
        self.dispatched = 0

    def on_tuple(self, port, tup):
        self.dispatched += 1
        return [Emit(payload=tup.payload, size=tup.size,
                     key=tup.payload.data["frame_no"])]

    def processing_cost(self, tup):
        return COST_DISPATCH * tup.size


class ColorFilter(Operator):
    """Detects the traffic-light colour in a frame (real kernel)."""

    state_attrs = ("frames_seen",)

    def __init__(self, idx: int):
        super().__init__(name=f"C{idx}")
        self.frames_seen = 0

    def on_tuple(self, port, tup):
        d = tup.payload.data
        self.frames_seen += 1
        colour = color_filter(d["frame"])
        out = SizedPayload(data={**d, "colour": colour}, nominal_size=FRAME_SIZE)
        return [Emit(payload=out, size=FRAME_SIZE, key=d["intersection"])]

    def processing_cost(self, tup):
        return COST_COLOR * tup.size


class ShapeFilter(Operator):
    """Verifies the light's geometry; drops frames with no light."""

    state_attrs = ("rejected",)

    def __init__(self, idx: int):
        super().__init__(name=f"A{idx}")
        self.rejected = 0

    def on_tuple(self, port, tup):
        d = tup.payload.data
        if not shape_filter(d["frame"], d["colour"]):
            self.rejected += 1
            return []
        return [Emit(payload=tup.payload, size=tup.size, key=d["intersection"])]

    def processing_cost(self, tup):
        return COST_SHAPE * tup.size


class MotionFilter(Operator):
    """Preserves frames while the vehicle is at the intersection, then
    analyses the episode when the vehicle leaves.  The retained frames
    are SignalGuru's dominant state (Fig. 5c: 200 MB - 2 GB)."""

    state_attrs = ("retained", "episodes_done", "current_episode")

    def __init__(self, idx: int, state_scale: float = 1.0):
        super().__init__(name=f"M{idx}")
        self.retained: list = []
        self.episodes_done = 0
        self.current_episode = -1
        self.item_size = max(1024, int(RETAINED_FRAME_BASE * state_scale))
        self.state_hints = {"retained": StateHint(element_size=self.item_size)}

    def on_tuple(self, port, tup):
        d = tup.payload.data
        out = []
        # A new episode id or an explicit leaves-flag means the previous
        # vehicle has left the intersection: analyse and discard its frames.
        # (Frames of one episode are hash-spread over three motion filters;
        # the episode-id change is the signal every filter observes.)
        if self.retained and (
            d["episode"] != self.current_episode or d["vehicle_leaves"]
        ):
            out.append(self._flush_episode(d["intersection"]))
        self.current_episode = d["episode"]
        self.retained.append(
            SizedPayload(data={"colour": d["colour"], "frame_no": d["frame_no"],
                               "episode": d["episode"]},
                         nominal_size=self.item_size)
        )
        return out

    def _flush_episode(self, intersection: int) -> Emit:
        colours = [r.data["colour"] for r in self.retained if r.data["colour"]]
        transitions = sum(1 for a, b in zip(colours, colours[1:]) if a != b)
        n = len(self.retained)
        episode = self.retained[-1].data["episode"]
        self.retained = []
        self.episodes_done += 1
        out = SizedPayload(
            data={"intersection": intersection, "transitions": transitions,
                  "episode_frames": n, "episode": episode,
                  "last_colour": colours[-1] if colours else None},
            nominal_size=4096,
        )
        return Emit(payload=out, size=4096, key=intersection)

    def processing_cost(self, tup):
        return COST_MOTION * tup.size


class VotingOperator(Operator):
    """Selects the majority estimate across the intersection's phones."""

    state_attrs = ("ballots",)

    def __init__(self, idx: int):
        super().__init__(name=f"V{idx}")
        self.ballots: list = []

    def on_tuple(self, port, tup):
        d = tup.payload.data
        self.ballots.append(d["transitions"])
        if len(self.ballots) < 3:
            return []
        votes = sorted(self.ballots)
        winner = votes[len(votes) // 2]
        self.ballots = []
        out = SizedPayload(
            data={"intersection": d["intersection"], "transitions": winner},
            nominal_size=1024,
        )
        return [Emit(payload=out, size=1024, key=d["intersection"])]

    def processing_cost(self, tup):
        return COST_VOTE * tup.size


class GroupOperator(Operator):
    state_attrs = ("forwarded",)

    def __init__(self, idx: int):
        super().__init__(name=f"G{idx}")
        self.forwarded = 0

    def on_tuple(self, port, tup):
        self.forwarded += 1
        return [Emit(payload=tup.payload, size=tup.size, key=self.forwarded)]

    def processing_cost(self, tup):
        return COST_GROUP * tup.size


class SVMPredictor(Operator):
    """Predicts whether the light flips within the advisory horizon."""

    state_attrs = ("predictions",)

    def __init__(self, idx: int, seed: int):
        super().__init__(name=f"P{idx}")
        self.predictions = 0
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(120, 2))
        y = np.where(X[:, 0] + 0.5 * X[:, 1] > 0, 1, -1)
        self.model = LinearSVM(dim=2).fit(X, y)

    def on_tuple(self, port, tup):
        d = tup.payload.data
        features = np.array([[d["transitions"], 1.0]])
        flip_soon = int(self.model.predict(features)[0] > 0)
        self.predictions += 1
        out = SizedPayload(
            data={"intersection": d["intersection"], "flip_soon": flip_soon},
            nominal_size=256,
        )
        return [Emit(payload=out, size=256, key=0)]

    def processing_cost(self, tup):
        return COST_PRED * tup.size


def build(
    seed: int = 0,
    frames_per_phone: int = 100000,
    frame_interval: float = 0.07,
    state_scale: float = 1.0,
) -> "StreamApplication":
    from repro.dsps.application import StreamApplication

    g = QueryGraph()
    for i in range(4):
        g.add_hau(
            f"S{i}",
            (lambda i=i: [PhoneSource(seed * 1000 + i, i, frames_per_phone, frame_interval)]),
            is_source=True,
        )
    for i in range(4):
        g.add_hau(f"D{i}", lambda i=i: [Dispatcher(i)])
    for i in range(12):
        g.add_hau(f"C{i}", lambda i=i: [ColorFilter(i)])
        g.add_hau(f"A{i}", lambda i=i: [ShapeFilter(i)])
        g.add_hau(f"M{i}", lambda i=i: [MotionFilter(i, state_scale)])
    for i in range(4):
        g.add_hau(f"V{i}", lambda i=i: [VotingOperator(i)])
        g.add_hau(f"G{i}", lambda i=i: [GroupOperator(i)])
    for i in range(2):
        g.add_hau(f"P{i}", lambda i=i: [SVMPredictor(i, seed * 1000 + 500 + i)])
    g.add_hau("K", lambda: [SinkOperator(name="K")], is_sink=True)

    for i in range(4):
        g.connect(f"S{i}", f"D{i}")
        for j in range(3):
            g.connect(f"D{i}", f"C{3 * i + j}", routing="hash")
    for i in range(12):
        g.connect(f"C{i}", f"A{i}")
        g.connect(f"A{i}", f"M{i}")
    for i in range(4):
        for j in range(3):
            g.connect(f"M{3 * i + j}", f"V{i}", dst_port=0)
        g.connect(f"V{i}", f"G{i}")
    g.connect("G0", "P0", dst_port=0)
    g.connect("G1", "P0", dst_port=1)
    g.connect("G2", "P1", dst_port=0)
    g.connect("G3", "P1", dst_port=1)
    g.connect("P0", "K", dst_port=0)
    g.connect("P1", "K", dst_port=0)

    return StreamApplication(name="signalguru", graph=g, params={"seed": seed, "probe_prefix": "M"})
