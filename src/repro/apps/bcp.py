"""Bus Capacity Prediction (BCP) — Fig. 3, 55 HAUs.

"It predicts how crowded a bus will be based on the number of passengers
on the bus and at the next few bus stops."  Camera frames are dispatched
to people-counting operators; historical-image operators retain recent
frames per camera to disambiguate occlusions and discard them on bus
arrivals — the fluctuating state of Fig. 5b.  An on-vehicle infrared
sensor path predicts arrival times and alighting counts; the two sides
join into per-route crowdedness predictions.

Topology (55): 4 camera sources S0-3, 4 dispatchers D0-3, 16 counters
C0-15, 4 historical-image operators H0-3, 4 boarding predictors B0-3,
2 joins J0/J2, 4 sensor sources S4-7, 4 noise filters N0-3, 4 arrival
predictors A0-3, 4 alighting predictors L0-3, 2 groups G0-1, 2
crowdedness predictors P0-1, sink K.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppProfile, SizedPayload
from repro.apps.kernels.svm import LinearSVM
from repro.apps.kernels.vision import count_people, make_frame
from repro.dsps.graph import QueryGraph
from repro.dsps.operator import Emit, Operator, SinkOperator, SourceOperator
from repro.state.spec import StateHint

PROFILE = AppProfile(
    name="bcp", hau_count=55, state_min_mb=100.0, state_max_mb=700.0,
    state_avg_mb=400.0, workload="medium",
)

FRAME_SIZE = 200 * 1024  # compressed camera frame on the wire
HISTORY_FRAME_BASE = 300 * 1024  # decoded retained copy (scaled by state_scale)
SENSOR_SIZE = 8 * 1024

COST_CAM = 3e-9
COST_DISPATCH = 20e-9
COST_COUNT = 3000e-9  # people counting: the heavy image stage
COST_HISTORY = 600e-9
COST_BOARD = 60e-9
COST_JOIN = 30e-9
COST_SENSOR_PATH = 2e-6  # per byte on small sensor tuples
COST_PRED = 50e-9


class CameraSource(SourceOperator):
    """A bus-stop camera: frames with Poisson passenger counts; a bus
    arrives every ``bus_period`` seconds (staggered per stop), flagged in
    the frame payload — the data-driven signal H uses to clear history."""

    def __init__(self, seed: int, stop: int, count: int, interval: float,
                 bus_period: float = 50.0):
        super().__init__(name=f"S{stop}")
        self.seed = seed
        self.stop = stop
        self.count = count
        self.interval = interval
        self.bus_period = bus_period

    def generate(self):
        rng = np.random.default_rng(self.seed)
        # stagger bus arrivals across stops so the aggregate state
        # fluctuates rather than collapsing at once
        next_bus = self.bus_period * (0.3 + 0.25 * self.stop)
        clock = 0.0
        for i in range(self.count):
            clock += self.interval
            bus_now = clock >= next_bus
            if bus_now:
                next_bus += self.bus_period * rng.uniform(0.8, 1.2)
            people = int(rng.poisson(4))
            frame = make_frame(rng, people=people)
            payload = SizedPayload(
                data={
                    "stop": self.stop,
                    "frame": frame,
                    "true_count": people,
                    "bus_arrival": bool(bus_now),
                    "frame_no": i,
                },
                nominal_size=FRAME_SIZE,
            )
            yield (self.interval, Emit(payload=payload, size=FRAME_SIZE, key=(self.stop, i)))

    def processing_cost(self, tup):
        return COST_CAM * tup.size


class Dispatcher(Operator):
    """Routes a stop's frames across its four counters (hash on frame no)
    and forwards every frame to the stop's historical-image operator."""

    state_attrs = ("dispatched",)

    def __init__(self, idx: int):
        super().__init__(name=f"D{idx}")
        self.dispatched = 0

    def on_tuple(self, port, tup):
        self.dispatched += 1
        d = tup.payload.data
        return [
            Emit(payload=tup.payload, size=tup.size, port=0, key=d["frame_no"]),
            Emit(payload=tup.payload, size=tup.size, port=1, key=d["stop"]),
        ]

    def processing_cost(self, tup):
        return COST_DISPATCH * tup.size


class CounterOperator(Operator):
    """Counts people in a frame (real blob counting on the synthetic
    frame).  The heavy stage of the image path."""

    state_attrs = ("frames_counted",)

    def __init__(self, idx: int):
        super().__init__(name=f"C{idx}")
        self.frames_counted = 0

    def on_tuple(self, port, tup):
        d = tup.payload.data
        counted = count_people(d["frame"])
        self.frames_counted += 1
        out = SizedPayload(
            data={"stop": d["stop"], "count": counted, "frame_no": d["frame_no"],
                  "bus_arrival": d["bus_arrival"]},
            nominal_size=2048,
        )
        return [Emit(payload=out, size=2048, key=d["stop"])]

    def processing_cost(self, tup):
        return COST_COUNT * tup.size


class HistoricalImages(Operator):
    """Retains downsampled frames per camera; clears them on bus arrival.

    This is BCP's dominant, fluctuating state: "the image accumulation
    and removal cause the state size to fluctuate" (Fig. 5b)."""

    state_attrs = ("history", "clears")

    def __init__(self, idx: int, state_scale: float = 1.0):
        super().__init__(name=f"H{idx}")
        self.history: list = []
        self.clears = 0
        self.item_size = max(1024, int(HISTORY_FRAME_BASE * state_scale))
        self.state_hints = {"history": StateHint(element_size=self.item_size)}

    def on_tuple(self, port, tup):
        d = tup.payload.data
        if d["bus_arrival"]:
            self.history = []
            self.clears += 1
        if d["frame_no"] % 2 == 0:  # retain alternate (decoded) frames
            self.history.append(
                SizedPayload(data={"frame_no": d["frame_no"]}, nominal_size=self.item_size)
            )
        quality = min(1.0, len(self.history) / 10.0)  # more history, better
        out = SizedPayload(
            data={"stop": d["stop"], "quality": quality, "frame_no": d["frame_no"]},
            nominal_size=1024,
        )
        return [Emit(payload=out, size=1024, key=d["stop"])]

    def processing_cost(self, tup):
        return COST_HISTORY * tup.size


class BoardingPredictor(Operator):
    """Predicts boarding passengers from counts (port 0) refined by the
    historical-image quality signal (port 1)."""

    state_attrs = ("recent_counts", "last_quality")
    state_hints = {"recent_counts": StateHint(element_size=16)}

    def __init__(self, idx: int):
        super().__init__(name=f"B{idx}")
        self.recent_counts: list = []
        self.last_quality = 0.5

    def on_tuple(self, port, tup):
        d = tup.payload.data
        if port == 1:
            self.last_quality = d["quality"]
            return []
        self.recent_counts.append(d["count"])
        if len(self.recent_counts) > 20:
            self.recent_counts = self.recent_counts[-20:]
        smoothed = sum(self.recent_counts) / len(self.recent_counts)
        boarding = smoothed * (0.8 + 0.4 * self.last_quality)
        out = SizedPayload(
            data={"stop": d["stop"], "boarding": boarding, "frame_no": d["frame_no"]},
            nominal_size=512,
        )
        return [Emit(payload=out, size=512, key=d["stop"])]

    def processing_cost(self, tup):
        return COST_BOARD * tup.size


class JoinOperator(Operator):
    """Joins two stops' boarding estimates into a route-segment record."""

    state_attrs = ("latest",)

    def __init__(self, idx: int):
        super().__init__(name=f"J{idx}")
        self.latest: dict = {}

    def on_tuple(self, port, tup):
        d = tup.payload.data
        self.latest[port] = d["boarding"]
        total = sum(self.latest.values())
        out = SizedPayload(
            data={"segment_boarding": total, "stops_known": len(self.latest)},
            nominal_size=512,
        )
        return [Emit(payload=out, size=512, key=port)]

    def processing_cost(self, tup):
        return COST_JOIN * tup.size


class SensorSource(SourceOperator):
    """On-vehicle infrared sensor: small, fast tuples."""

    def __init__(self, seed: int, vehicle: int, count: int, interval: float):
        super().__init__(name=f"S{4 + vehicle}")
        self.seed = seed
        self.vehicle = vehicle
        self.count = count
        self.interval = interval

    def generate(self):
        rng = np.random.default_rng(self.seed)
        for i in range(self.count):
            payload = SizedPayload(
                data={
                    "vehicle": self.vehicle,
                    "beam_breaks": int(rng.poisson(2)),
                    "speed": float(rng.uniform(3, 15)),
                    "reading_no": i,
                },
                nominal_size=SENSOR_SIZE,
            )
            yield (self.interval, Emit(payload=payload, size=SENSOR_SIZE, key=self.vehicle))

    def processing_cost(self, tup):
        return COST_CAM * tup.size


class NoiseFilter(Operator):
    """Median-of-recent filter over the infrared readings."""

    state_attrs = ("window",)

    def __init__(self, idx: int):
        super().__init__(name=f"N{idx}")
        self.window: list = []

    def on_tuple(self, port, tup):
        d = tup.payload.data
        self.window.append(d["beam_breaks"])
        if len(self.window) > 5:
            self.window = self.window[-5:]
        filtered = sorted(self.window)[len(self.window) // 2]
        out = SizedPayload(
            data={"vehicle": d["vehicle"], "passengers_on": filtered, "speed": d["speed"]},
            nominal_size=SENSOR_SIZE,
        )
        return [Emit(payload=out, size=SENSOR_SIZE, key=d["vehicle"])]

    def processing_cost(self, tup):
        return COST_SENSOR_PATH * tup.size


class ArrivalPredictor(Operator):
    """Predicts bus arrival time from speed (running average model)."""

    state_attrs = ("speed_sum", "speed_n")

    def __init__(self, idx: int):
        super().__init__(name=f"A{idx}")
        self.speed_sum = 0.0
        self.speed_n = 0

    def on_tuple(self, port, tup):
        d = tup.payload.data
        self.speed_sum += d["speed"]
        self.speed_n += 1
        avg_speed = self.speed_sum / self.speed_n
        eta = 500.0 / max(avg_speed, 0.1)
        out = SizedPayload(
            data={"vehicle": d["vehicle"], "eta": eta,
                  "passengers_on": d["passengers_on"]},
            nominal_size=SENSOR_SIZE,
        )
        return [Emit(payload=out, size=SENSOR_SIZE, key=d["vehicle"])]

    def processing_cost(self, tup):
        return COST_SENSOR_PATH * tup.size


class AlightingPredictor(Operator):
    """Predicts alighting passengers with a small linear model."""

    state_attrs = ("history",)

    def __init__(self, idx: int, seed: int):
        super().__init__(name=f"L{idx}")
        self.history: list = []
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(100, 2))
        y = np.where(0.6 * X[:, 0] - 0.2 * X[:, 1] > 0, 1, -1)
        self.model = LinearSVM(dim=2).fit(X, y)  # rebuilt at setup: not state

    def on_tuple(self, port, tup):
        d = tup.payload.data
        features = np.array([[d["passengers_on"], d["eta"] / 100.0]])
        will_alight = int(self.model.predict(features)[0] > 0)
        self.history.append(will_alight)
        if len(self.history) > 50:
            self.history = self.history[-50:]
        out = SizedPayload(
            data={"vehicle": d["vehicle"], "alighting": sum(self.history[-10:]),
                  "eta": d["eta"]},
            nominal_size=512,
        )
        return [Emit(payload=out, size=512, key=d["vehicle"])]

    def processing_cost(self, tup):
        return COST_SENSOR_PATH * tup.size


class GroupOperator(Operator):
    state_attrs = ("merged",)

    def __init__(self, idx: int):
        super().__init__(name=f"G{idx}")
        self.merged = 0

    def on_tuple(self, port, tup):
        self.merged += 1
        return [Emit(payload=tup.payload, size=tup.size, key=port)]

    def processing_cost(self, tup):
        return COST_JOIN * tup.size


class CrowdednessPredictor(Operator):
    """Final prediction: boarding - alighting, rolling per segment."""

    state_attrs = ("segment_load",)

    def __init__(self, idx: int):
        super().__init__(name=f"P{idx}")
        self.segment_load = 0.0

    def on_tuple(self, port, tup):
        d = tup.payload.data
        if "segment_boarding" in d:
            self.segment_load += 0.1 * d["segment_boarding"]
        else:
            self.segment_load -= 0.05 * d.get("alighting", 0)
        self.segment_load = max(0.0, min(100.0, self.segment_load))
        out = SizedPayload(data={"crowdedness": self.segment_load}, nominal_size=256)
        return [Emit(payload=out, size=256, key=0)]

    def processing_cost(self, tup):
        return COST_PRED * tup.size


def build(
    seed: int = 0,
    frames_per_camera: int = 100000,
    camera_interval: float = 0.12,
    sensor_interval: float = 0.5,
    bus_period: float = 50.0,
    state_scale: float = 1.0,
) -> "StreamApplication":
    from repro.dsps.application import StreamApplication

    g = QueryGraph()
    for i in range(4):
        g.add_hau(
            f"S{i}",
            (lambda i=i: [CameraSource(seed * 1000 + i, i, frames_per_camera,
                                       camera_interval, bus_period)]),
            is_source=True,
        )
    for i in range(4):
        g.add_hau(f"D{i}", lambda i=i: [Dispatcher(i)])
    for i in range(16):
        g.add_hau(f"C{i}", lambda i=i: [CounterOperator(i)])
    for i in range(4):
        g.add_hau(f"H{i}", lambda i=i: [HistoricalImages(i, state_scale)])
    for i in range(4):
        g.add_hau(f"B{i}", lambda i=i: [BoardingPredictor(i)])
    for i in (0, 2):
        g.add_hau(f"J{i}", lambda i=i: [JoinOperator(i)])
    for i in range(4):
        g.add_hau(
            f"S{4 + i}",
            (lambda i=i: [SensorSource(seed * 1000 + 100 + i, i, frames_per_camera,
                                       sensor_interval)]),
            is_source=True,
        )
    for i in range(4):
        g.add_hau(f"N{i}", lambda i=i: [NoiseFilter(i)])
    for i in range(4):
        g.add_hau(f"A{i}", lambda i=i: [ArrivalPredictor(i)])
    for i in range(4):
        g.add_hau(f"L{i}", lambda i=i: [AlightingPredictor(i, seed * 1000 + 200 + i)])
    for i in range(2):
        g.add_hau(f"G{i}", lambda i=i: [GroupOperator(i)])
    for i in range(2):
        g.add_hau(f"P{i}", lambda i=i: [CrowdednessPredictor(i)])
    g.add_hau("K", lambda: [SinkOperator(name="K")], is_sink=True)

    # camera path
    for i in range(4):
        g.connect(f"S{i}", f"D{i}")
        for j in range(4):
            g.connect(f"D{i}", f"C{4 * i + j}", src_port=0, routing="hash")
        g.connect(f"D{i}", f"H{i}", src_port=1)
        for j in range(4):
            g.connect(f"C{4 * i + j}", f"B{i}", dst_port=0)
        g.connect(f"H{i}", f"B{i}", dst_port=1)
    g.connect("B0", "J0", dst_port=0)
    g.connect("B1", "J0", dst_port=1)
    g.connect("B2", "J2", dst_port=0)
    g.connect("B3", "J2", dst_port=1)
    # sensor path
    for i in range(4):
        g.connect(f"S{4 + i}", f"N{i}")
        g.connect(f"N{i}", f"A{i}")
        g.connect(f"A{i}", f"L{i}")
    # convergence
    g.connect("J0", "G0", dst_port=0)
    g.connect("L0", "G0", dst_port=1)
    g.connect("L1", "G0", dst_port=1)
    g.connect("J2", "G1", dst_port=0)
    g.connect("L2", "G1", dst_port=1)
    g.connect("L3", "G1", dst_port=1)
    g.connect("G0", "P0")
    g.connect("G1", "P1")
    g.connect("P0", "K", dst_port=0)
    g.connect("P1", "K", dst_port=0)

    return StreamApplication(name="bcp", graph=g, params={"seed": seed, "probe_prefix": "B"})
